package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// This file is the serving side of the forward/update split (DESIGN.md §12):
// a forward-only engine family that drives the exact same per-stage forward
// math as the trainers (stage.go forwardInfer) but carries no backward pass,
// no optimizer, and no per-inflight context FIFOs. Weights live in immutable
// reference-counted WeightSets shared by every replica; a hot swap atomically
// publishes a new set while in-flight requests finish on the version they
// were admitted with.

// ErrInferClosed is returned by Infer once the engine has been closed.
var ErrInferClosed = errors.New("core: infer engine closed")

// WeightSet is an immutable snapshot of a network's weights, organized per
// stage in parameter order. All inference replicas read the same underlying
// slices — forward compute never writes parameter storage — and a reference
// count tracks how many in-flight requests (plus at most one publication
// slot) still pin the set, which is what the hot-swap leak tests assert on.
type WeightSet struct {
	names [][]string
	dtype tensor.DType
	// Exactly one of datas/datas32 is populated, matching dtype.
	datas   [][][]float64
	datas32 [][][]float32
	refs    atomic.Int64
}

// CaptureWeights deep-copies net's current weights into a WeightSet at the
// network's own dtype. The source network is not retained; mutating it later
// does not affect the set.
func CaptureWeights(net *nn.Network) *WeightSet {
	n := net.NumStages()
	ws := &WeightSet{
		names: make([][]string, n),
		dtype: net.DType(),
	}
	if ws.dtype == tensor.F32 {
		ws.datas32 = make([][][]float32, n)
	} else {
		ws.datas = make([][][]float64, n)
	}
	for s := 0; s < n; s++ {
		ps := net.StageParams(s)
		ws.names[s] = make([]string, len(ps))
		if ws.dtype == tensor.F32 {
			ws.datas32[s] = make([][]float32, len(ps))
			for j, p := range ps {
				ws.names[s][j] = p.Name
				ws.datas32[s][j] = append([]float32(nil), p.W.Data32()...)
			}
			continue
		}
		ws.datas[s] = make([][]float64, len(ps))
		for j, p := range ps {
			ws.names[s][j] = p.Name
			ws.datas[s][j] = append([]float64(nil), p.W.Data...)
		}
	}
	return ws
}

// DType reports the element type the set's weights are stored at.
func (ws *WeightSet) DType() tensor.DType { return ws.dtype }

// stageCount returns the number of stages the set covers.
func (ws *WeightSet) stageCount() int { return len(ws.names) }

// paramLen returns the value count of stage s's parameter j.
func (ws *WeightSet) paramLen(s, j int) int {
	if ws.dtype == tensor.F32 {
		return len(ws.datas32[s][j])
	}
	return len(ws.datas[s][j])
}

func (ws *WeightSet) retain() { ws.refs.Add(1) }

func (ws *WeightSet) release() {
	if ws.refs.Add(-1) < 0 {
		panic("core: WeightSet released more often than retained")
	}
}

// InUse reports how many references (in-flight requests plus the engine's
// publication slot) still pin the set. A swapped-out set drains to zero once
// every request admitted under it has completed.
func (ws *WeightSet) InUse() int64 { return ws.refs.Load() }

// matches validates the set against an expected per-stage parameter layout
// and dtype.
func (ws *WeightSet) matches(names [][]string, sizes [][]int, dt tensor.DType) error {
	if ws.dtype != dt {
		return fmt.Errorf("core: weight set dtype %s, engine runs %s", ws.dtype, dt)
	}
	if ws.stageCount() != len(names) {
		return fmt.Errorf("core: weight set has %d stages, want %d", ws.stageCount(), len(names))
	}
	for s := range names {
		if len(ws.names[s]) != len(names[s]) {
			return fmt.Errorf("core: weight set stage %d has %d params, want %d", s, len(ws.names[s]), len(names[s]))
		}
		for j := range names[s] {
			if ws.names[s][j] != names[s][j] {
				return fmt.Errorf("core: weight set stage %d param %d is %q, want %q", s, j, ws.names[s][j], names[s][j])
			}
			if ws.paramLen(s, j) != sizes[s][j] {
				return fmt.Errorf("core: weight set param %q has %d values, want %d", ws.names[s][j], ws.paramLen(s, j), sizes[s][j])
			}
		}
	}
	return nil
}

// InferStats is a point-in-time snapshot of an inference engine's counters.
type InferStats struct {
	Stages    int
	Replicas  int
	Submitted int64
	Completed int64
	Swaps     int64
}

// InferConfig configures an inference engine.
type InferConfig struct {
	// Workers is the total kernel-worker budget, split replicas-first then
	// per stage exactly like the training engines (workers.go). 0 = serial.
	Workers int
	// Unpooled disables arena pooling (the allocate-everything reference
	// path, bit-identical to the pooled one).
	Unpooled bool
	// Obs, when non-nil, is the metrics bus the engine emits per-stage queue
	// depth and lifetime completion events onto (internal/obs). Emission
	// never blocks a stage and never changes the computed logits.
	Obs *obs.Bus
}

// InferEngine is the forward-only serving surface. Infer runs one input
// tensor (a sample or a coalesced micro-batch [N, ...]) through the pipeline
// and returns a caller-owned logits tensor; Swap atomically publishes a new
// weight set without dropping in-flight requests and returns the displaced
// one so callers can watch its references drain.
type InferEngine interface {
	Infer(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error)
	Swap(ws *WeightSet) (*WeightSet, error)
	Weights() *WeightSet
	NumStages() int
	Stats() InferStats
	Close()
}

// InferFactory builds an inference engine over replica networks. The engines
// take ownership of the nets: their parameter storage is pointer-swapped to
// the published WeightSet, so the nets must not be trained or served through
// another engine afterwards.
type InferFactory func(nets []*nn.Network, cfg InferConfig) (InferEngine, error)

var (
	inferMu       sync.RWMutex
	inferRegistry = map[string]InferFactory{}
)

// RegisterInferEngine adds a named inference-engine constructor to the
// registry, mirroring RegisterEngine's contract: names must be unique and
// non-empty, factories non-nil.
func RegisterInferEngine(name string, f InferFactory) {
	if name == "" {
		panic("core: RegisterInferEngine with empty name")
	}
	if f == nil {
		panic("core: RegisterInferEngine with nil factory")
	}
	inferMu.Lock()
	defer inferMu.Unlock()
	if _, dup := inferRegistry[name]; dup {
		panic("core: RegisterInferEngine duplicate name " + name)
	}
	inferRegistry[name] = f
}

// InferEngineNames returns the registered inference-engine names, sorted.
func InferEngineNames() []string {
	inferMu.RLock()
	defer inferMu.RUnlock()
	names := make([]string, 0, len(inferRegistry))
	for name := range inferRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewInferEngine builds the named inference engine ("" means "pipelined").
func NewInferEngine(kind string, nets []*nn.Network, cfg InferConfig) (InferEngine, error) {
	if kind == "" {
		kind = "pipelined"
	}
	inferMu.RLock()
	f := inferRegistry[kind]
	inferMu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("core: unknown infer engine %q (have %v)", kind, InferEngineNames())
	}
	return f(nets, cfg)
}

func init() {
	RegisterInferEngine("pipelined", newPipelinedInfer)
	RegisterInferEngine("direct", newDirectInfer)
}

// inferBase holds the state shared by every inference engine: the published
// weight set and the request counters.
type inferBase struct {
	weights atomic.Pointer[WeightSet]
	// names/sizes/dtype are the pipeline's expected parameter layout, captured
	// at construction and used to validate swapped-in sets.
	names [][]string
	sizes [][]int
	dtype tensor.DType

	submitted atomic.Int64
	completed atomic.Int64
	swaps     atomic.Int64
}

// initBase captures the parameter layout from net, publishes its weights as
// the initial set, and validates nets as weight-identical replicas.
func (b *inferBase) initBase(nets []*nn.Network) error {
	if len(nets) == 0 {
		return errors.New("core: infer engine needs at least one network")
	}
	if err := validateReplicaNets(nets); err != nil {
		return err
	}
	net := nets[0]
	n := net.NumStages()
	b.dtype = net.DType()
	b.names = make([][]string, n)
	b.sizes = make([][]int, n)
	for s := 0; s < n; s++ {
		ps := net.StageParams(s)
		b.names[s] = make([]string, len(ps))
		b.sizes[s] = make([]int, len(ps))
		for j, p := range ps {
			b.names[s][j] = p.Name
			b.sizes[s][j] = p.W.Size()
		}
	}
	ws := CaptureWeights(net)
	ws.retain() // the publication slot's reference
	b.weights.Store(ws)
	return nil
}

// acquire pins the currently published weight set for one request. The
// retain/re-check loop closes the race against a concurrent Swap releasing
// the set between the load and the retain.
func (b *inferBase) acquire() *WeightSet {
	for {
		ws := b.weights.Load()
		ws.retain()
		if b.weights.Load() == ws {
			return ws
		}
		ws.release()
	}
}

// swap validates and atomically publishes ws, returning the displaced set.
func (b *inferBase) swap(ws *WeightSet) (*WeightSet, error) {
	if err := ws.matches(b.names, b.sizes, b.dtype); err != nil {
		return nil, err
	}
	ws.retain()
	old := b.weights.Swap(ws)
	old.release()
	b.swaps.Add(1)
	return old, nil
}

// Weights returns the currently published set (not retained: callers that
// need to hold it across a swap must go through Infer, which pins per
// request).
func (b *inferBase) Weights() *WeightSet { return b.weights.Load() }

func (b *inferBase) stats() InferStats {
	return InferStats{
		Stages:    len(b.names),
		Submitted: b.submitted.Load(),
		Completed: b.completed.Load(),
		Swaps:     b.swaps.Load(),
	}
}

// inferFlight is one request in flight through a pipelined replica. The
// weight set is pinned at admission so the whole pipeline computes under one
// version even if a swap lands mid-flight; out is buffered so the last stage
// never blocks on a caller that has abandoned the request.
type inferFlight struct {
	p   *nn.Packet
	ws  *WeightSet
	out chan *tensor.Tensor
}

// inferStage is one stage of one pipelined inference replica. Like
// stageState, its arena and installed weight view are touched only by the
// stage's own goroutine.
type inferStage struct {
	idx    int
	stage  nn.Stage
	params []*nn.Param
	cur    *WeightSet
	arena  *tensor.Arena
	par    *tensor.Parallel
	in     chan *inferFlight
	// obs, when non-nil, receives the stage's queue-depth events (and, at
	// the last stage, completion events). Stage-goroutine only.
	obs *obs.Producer
}

// install points the stage's parameters at the flight's weight view. The
// comparison against the last-installed set makes this a no-op on the steady
// path; stage goroutines own their params, so the pointer swap is race-free.
func (st *inferStage) install(ws *WeightSet) {
	if ws == st.cur {
		return
	}
	installStageWeights(ws, st.idx, st.params)
	st.cur = ws
}

// installStageWeights pointer-swaps stage idx's parameters onto ws's storage,
// dispatching on the set's dtype.
func installStageWeights(ws *WeightSet, idx int, params []*nn.Param) {
	if ws.dtype == tensor.F32 {
		view := ws.datas32[idx]
		for j, p := range params {
			p.SwapData32(view[j])
		}
		return
	}
	view := ws.datas[idx]
	for j, p := range params {
		p.SwapData(view[j])
	}
}

// pipelinedInfer is the forward-only pipelined engine: one goroutine per
// stage per replica, connected by channels, with requests round-robined
// across replicas. It is the serving twin of AsyncPBTrainer's forward path.
type pipelinedInfer struct {
	inferBase
	reps [][]*inferStage
	next atomic.Uint64
	stop chan struct{}
	wg   sync.WaitGroup
	pars []*tensor.Parallel
	once sync.Once
}

// newPipelinedInfer builds the pipelined engine over R replica networks
// (one replica per net).
func newPipelinedInfer(nets []*nn.Network, cfg InferConfig) (InferEngine, error) {
	e := &pipelinedInfer{stop: make(chan struct{})}
	if err := e.initBase(nets); err != nil {
		return nil, err
	}
	s := nets[0].NumStages()
	repBudget := replicaShares(cfg.Workers, len(nets))
	for r, net := range nets {
		shares := kernelShares(repBudget[r], s)
		stages := make([]*inferStage, s)
		for i := 0; i < s; i++ {
			var ar *tensor.Arena
			if !cfg.Unpooled {
				ar = tensor.NewArena()
			}
			par := tensor.NewParallel(shares[i])
			if par != nil {
				e.pars = append(e.pars, par)
			}
			stages[i] = &inferStage{
				idx:    i,
				stage:  net.Stages[i],
				params: net.StageParams(i),
				arena:  ar,
				par:    par,
				in:     make(chan *inferFlight, 1),
			}
			if cfg.Obs != nil {
				stages[i].obs = cfg.Obs.Producer(obsRingCap)
			}
		}
		e.reps = append(e.reps, stages)
	}
	for _, stages := range e.reps {
		for _, st := range stages {
			e.wg.Add(1)
			go e.stageLoop(stages, st)
		}
	}
	return e, nil
}

// stageLoop is one stage goroutine: receive a flight, install its weight
// view, run the forward-only primitive, and hand the flight downstream (or
// deliver logits at the last stage). Every channel operation carries a stop
// escape so Close unwinds the whole pipeline (§6 contract).
func (e *pipelinedInfer) stageLoop(stages []*inferStage, st *inferStage) {
	defer e.wg.Done()
	last := st.idx == len(stages)-1
	for {
		select {
		case f := <-st.in:
			if st.obs != nil {
				st.obs.Emit(obs.Event{Kind: obs.KindQueueDepth, Stage: st.idx, Count: int64(len(st.in))})
			}
			st.install(f.ws)
			out := forwardInfer(st.stage, f.p, st.arena, st.par)
			if !last {
				f.p = out
				select {
				case stages[st.idx+1].in <- f:
				case <-e.stop:
					f.ws.release()
					return
				}
				continue
			}
			if len(out.Skips) != 0 {
				panic("core: infer pipeline finished with a non-empty skip stack")
			}
			// Copy the logits out of the arena so the result crosses the
			// goroutine boundary with no shared ownership. The flight is
			// settled — weight pin released, completion counted — before the
			// response is delivered, so a client that has its logits always
			// observes the counters and reference counts already up to date.
			logits := tensor.NewDT(out.X.DType(), out.X.Shape...)
			logits.CopyFrom(out.X)
			st.arena.Put(out.X)
			f.ws.release()
			done := e.completed.Add(1)
			if st.obs != nil {
				st.obs.Emit(obs.Event{Kind: obs.KindInferDone, Stage: -1, Count: done})
			}
			select {
			case f.out <- logits:
			case <-e.stop:
			}
		case <-e.stop:
			return
		}
	}
}

// Infer implements InferEngine. The input tensor moves into the engine; the
// returned logits tensor is caller-owned. Cancelling ctx abandons the wait
// but the flight still completes inside the pipeline (its resources are
// released there), so cancellation never wedges a stage.
func (e *pipelinedInfer) Infer(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	x = x.ConvertTo(e.dtype) // feeders supply f64; identity when dtypes match
	ws := e.acquire()
	f := &inferFlight{p: nn.NewPacket(x), ws: ws, out: make(chan *tensor.Tensor, 1)}
	rep := e.reps[int(e.next.Add(1)-1)%len(e.reps)]
	select {
	case rep[0].in <- f:
		e.submitted.Add(1)
	case <-ctx.Done():
		ws.release()
		return nil, ctx.Err()
	case <-e.stop:
		ws.release()
		return nil, ErrInferClosed
	}
	select {
	case y := <-f.out:
		return y, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-e.stop:
		return nil, ErrInferClosed
	}
}

// Swap implements InferEngine.
func (e *pipelinedInfer) Swap(ws *WeightSet) (*WeightSet, error) { return e.swap(ws) }

// NumStages implements InferEngine.
func (e *pipelinedInfer) NumStages() int { return len(e.names) }

// Stats implements InferEngine.
func (e *pipelinedInfer) Stats() InferStats {
	st := e.stats()
	st.Replicas = len(e.reps)
	return st
}

// Close implements InferEngine: it unwinds every stage goroutine, releases
// any flights still queued between stages, drops the publication reference,
// and closes the kernel-worker groups. Idempotent. Callers that need a
// zero-drop shutdown must stop submitting and let in-flight requests finish
// first (the serve layer's drain does exactly that).
func (e *pipelinedInfer) Close() {
	e.once.Do(func() {
		close(e.stop)
		e.wg.Wait()
		for _, stages := range e.reps {
			for _, st := range stages {
				for {
					select {
					case f := <-st.in:
						f.ws.release()
					default:
						goto next
					}
				}
			next:
			}
		}
		closeParallels(e.pars)
		e.weights.Load().release()
	})
}

// directReplica is one serialized forward path of the direct engine: all
// stages run in the caller's goroutine under the replica lock, sharing one
// arena (tensors migrate between stages exactly as they do across pipeline
// stage boundaries).
type directReplica struct {
	mu     sync.Mutex
	stages []nn.Stage
	params [][]*nn.Param
	cur    *WeightSet
	arena  *tensor.Arena
	par    *tensor.Parallel
	// obs receives completion events; emits happen under mu, so the replica
	// lock serializes the single-producer ring.
	obs *obs.Producer
}

// directInfer runs the whole forward pass inline in the calling goroutine,
// one request at a time per replica. It spawns no goroutines and is the
// oracle the bit-exactness tests compare the pipelined engine against.
type directInfer struct {
	inferBase
	reps   []*directReplica
	next   atomic.Uint64
	pars   []*tensor.Parallel
	closed atomic.Bool
	once   sync.Once
}

// newDirectInfer builds the direct (in-caller, serialized) engine.
func newDirectInfer(nets []*nn.Network, cfg InferConfig) (InferEngine, error) {
	e := &directInfer{}
	if err := e.initBase(nets); err != nil {
		return nil, err
	}
	repBudget := replicaShares(cfg.Workers, len(nets))
	for r, net := range nets {
		rep := &directReplica{par: tensor.NewParallel(repBudget[r])}
		if !cfg.Unpooled {
			rep.arena = tensor.NewArena()
		}
		if cfg.Obs != nil {
			rep.obs = cfg.Obs.Producer(obsRingCap)
		}
		if rep.par != nil {
			e.pars = append(e.pars, rep.par)
		}
		for s := 0; s < net.NumStages(); s++ {
			rep.stages = append(rep.stages, net.Stages[s])
			rep.params = append(rep.params, net.StageParams(s))
		}
		e.reps = append(e.reps, rep)
	}
	return e, nil
}

// Infer implements InferEngine.
func (e *directInfer) Infer(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if e.closed.Load() {
		return nil, ErrInferClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	x = x.ConvertTo(e.dtype) // feeders supply f64; identity when dtypes match
	ws := e.acquire()
	defer ws.release()
	rep := e.reps[int(e.next.Add(1)-1)%len(e.reps)]
	rep.mu.Lock()
	defer rep.mu.Unlock()
	e.submitted.Add(1)
	if ws != rep.cur {
		for s, ps := range rep.params {
			installStageWeights(ws, s, ps)
		}
		rep.cur = ws
	}
	p := nn.NewPacket(x)
	for _, st := range rep.stages {
		p = forwardInfer(st, p, rep.arena, rep.par)
	}
	if len(p.Skips) != 0 {
		panic("core: infer pipeline finished with a non-empty skip stack")
	}
	logits := tensor.NewDT(p.X.DType(), p.X.Shape...)
	logits.CopyFrom(p.X)
	rep.arena.Put(p.X)
	done := e.completed.Add(1)
	if rep.obs != nil {
		rep.obs.Emit(obs.Event{Kind: obs.KindInferDone, Stage: -1, Count: done})
	}
	return logits, nil
}

// Swap implements InferEngine.
func (e *directInfer) Swap(ws *WeightSet) (*WeightSet, error) { return e.swap(ws) }

// NumStages implements InferEngine.
func (e *directInfer) NumStages() int { return len(e.names) }

// Stats implements InferEngine.
func (e *directInfer) Stats() InferStats {
	st := e.stats()
	st.Replicas = len(e.reps)
	return st
}

// Close implements InferEngine.
func (e *directInfer) Close() {
	e.once.Do(func() {
		e.closed.Store(true)
		closeParallels(e.pars)
		e.weights.Load().release()
	})
}
