package core

import (
	"context"
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
)

// testAliasBuilds counts test-seq-alias factory invocations; the guard
// keeps the process-global registration idempotent under `go test -count=N`,
// which reruns tests in one process.
var (
	testAliasOnce   sync.Once
	testAliasBuilds atomic.Int64
)

// TestRegisterEngineExtends proves the factory is data-driven: a custom
// registration is immediately listed by EngineNames and constructible by
// NewEngine. (The registry is process-global, so the name stays registered
// for the rest of the test binary — use one nothing else claims.)
func TestRegisterEngineExtends(t *testing.T) {
	testAliasOnce.Do(func() {
		RegisterEngine("test-seq-alias", func(net *nn.Network, cfg Config) Engine {
			testAliasBuilds.Add(1)
			return NewPBTrainer(net, cfg)
		})
	})
	if !slices.Contains(EngineNames(), "test-seq-alias") {
		t.Fatalf("EngineNames() = %v, missing custom registration", EngineNames())
	}
	before := testAliasBuilds.Load()
	e, err := NewEngine("test-seq-alias", models.DeepMLP(4, 4, 2, 2, 1), Config{LR: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if got := testAliasBuilds.Load() - before; got != 1 {
		t.Fatalf("factory invoked %d times, want 1", got)
	}
	train, _ := data.GaussianBlobs(4, 2, 8, 0, 1, 0.5, 1)
	if _, _, err := RunEpoch(context.Background(), e, train, nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Completed != train.Len() {
		t.Fatalf("custom engine completed %d of %d", st.Completed, train.Len())
	}
}

func TestRegisterEngineRejectsDuplicatesAndNil(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate", func() {
		RegisterEngine("seq", func(net *nn.Network, cfg Config) Engine { return NewPBTrainer(net, cfg) })
	})
	mustPanic("empty name", func() {
		RegisterEngine("", func(net *nn.Network, cfg Config) Engine { return NewPBTrainer(net, cfg) })
	})
	mustPanic("nil factory", func() { RegisterEngine("test-nil-factory", nil) })
}

func TestEngineNamesListsBuiltins(t *testing.T) {
	names := EngineNames()
	for _, want := range []string{"seq", "lockstep", "async", "async-lockstep"} {
		if !slices.Contains(names, want) {
			t.Fatalf("EngineNames() = %v, missing %q", names, want)
		}
	}
}

// TestRunEpochAugmenterNilRNG is the regression test for the nil-RNG
// augmentation path: RunEpoch with a real (randomized) augmenter and no RNG
// used to crash with a bare nil dereference inside Augmenter.Apply; it now
// derives a deterministic seeded RNG, so the run completes and is
// bit-reproducible.
func TestRunEpochAugmenterNilRNG(t *testing.T) {
	imgs := data.CIFAR10Like(8, 16, 0, 3)
	train, _ := data.GenerateImages(imgs)
	aug := data.PadCropFlip{Channels: 3, Size: 8, Pad: 1}
	run := func(useAug bool) (float64, [][]float64) {
		net := models.ResNet(models.MiniResNet(8, 4, 8, 10, 5))
		e := NewPBTrainer(net, ScaledConfig(0.05, 0.9, 32, 1))
		var a data.Augmenter
		if useAug {
			a = aug
		}
		loss, _, err := RunEpoch(context.Background(), e, train, nil, a, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return loss, net.SnapshotWeights()
	}
	loss1, w1 := run(true)
	loss2, w2 := run(true)
	if loss1 != loss2 {
		t.Fatalf("nil-RNG augmented runs diverge: loss %v vs %v", loss1, loss2)
	}
	for i := range w1 {
		for j := range w1[i] {
			if w1[i][j] != w2[i][j] {
				t.Fatalf("nil-RNG augmented runs diverge at weight [%d][%d]", i, j)
			}
		}
	}
	// The fallback RNG must actually drive the augmenter: an augmented run
	// cannot coincide with the untouched-sample run.
	_, wPlain := run(false)
	same := true
	for i := range w1 {
		for j := range w1[i] {
			if w1[i][j] != wPlain[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("augmenter with derived RNG left the trajectory identical to the unaugmented run")
	}
}

// TestEngineSubmitCancelled checks every engine's Submit/Drain honor an
// already-cancelled context without admitting work or blocking.
func TestEngineSubmitCancelled(t *testing.T) {
	train, _ := data.GaussianBlobs(6, 3, 4, 0, 1, 0.5, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, kind := range []string{"seq", "lockstep", "async", "async-lockstep"} {
		e, err := NewEngine(kind, models.DeepMLP(6, 8, 3, 3, 1), Config{LR: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		x, y := train.Sample(0)
		if _, err := e.Submit(ctx, x, y); err == nil {
			t.Fatalf("%s: Submit with cancelled ctx succeeded", kind)
		}
		if _, err := e.Drain(ctx); err == nil {
			t.Fatalf("%s: Drain with cancelled ctx succeeded", kind)
		}
		if st := e.Stats(); st.Submitted != 0 {
			t.Fatalf("%s: cancelled Submit still admitted %d samples", kind, st.Submitted)
		}
		// The rejected engine must still drain cleanly and close leak-free.
		if rs := drain(e); len(rs) != 0 {
			t.Fatalf("%s: empty engine drained %d results", kind, len(rs))
		}
		e.Close()
	}
}
