package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Engine is the trainer interface shared by the pipelined-backpropagation
// engines:
//
//   - "seq":      PBTrainer — single-threaded, cycle-accurate reference.
//   - "lockstep": ParallelPBTrainer — goroutine per stage, global barrier
//     per half-step; bit-identical to seq, parallel within a step.
//   - "async":    AsyncPBTrainer in ModeFree — free-running stages over
//     bounded queues, no barrier; staleness capped at D_s per stage.
//   - "async-lockstep": AsyncPBTrainer in ModeLockstep — the async runtime
//     driven as a deterministic systolic array; bit-identical to seq.
//
// Additional engines can be added with RegisterEngine.
//
// Submit feeds one sample and returns whatever results completed; the
// engine takes ownership of x (its storage is recycled into the stage-0
// buffer pool once the sample's final update is applied — get the next
// input tensor from InputBuffer instead of reusing x). Drain quiesces the
// pipeline.
//
// Submit and Drain observe ctx: when it is cancelled they stop blocking and
// return ctx's error together with any results already collected (a nil ctx
// is treated as context.Background()). A cancelled engine may still hold
// in-flight samples; call Close to abandon them and release every engine
// goroutine — cancellation plus Close never leaks.
//
// ObservedDelays and Stats are only meaningful on a quiesced pipeline
// (after a completed Drain, or after Close).
type Engine interface {
	Submit(ctx context.Context, x *tensor.Tensor, label int) ([]*Result, error)
	// InputBuffer returns a tensor of the given shape for the next Submit,
	// reusing a retired input buffer when one is available so steady-state
	// feeding allocates nothing.
	InputBuffer(shape ...int) *tensor.Tensor
	Drain(ctx context.Context) ([]*Result, error)
	Close()
	NumStages() int
	Delays() []int
	ObservedDelays() []int
	// Stats returns a snapshot of the engine's progress and utilization
	// accounting. Only valid with the pipeline quiesced.
	Stats() Stats
}

// Stats is a point-in-time snapshot of an engine's accounting. It replaces
// the old Utilization(samplesCompleted) call: engines count their own
// completions now, so a snapshot needs no caller-supplied state.
type Stats struct {
	// Stages is the pipeline depth S.
	Stages int
	// Submitted counts samples accepted by Submit; Completed counts samples
	// whose final (stage-0) weight update has been applied.
	Submitted int
	Completed int
	// Steps counts pipeline steps driven, including fill/drain bubbles. The
	// free-running async engine has no global step; it reports 0.
	Steps int
	// Utilization is the engine's own utilization measure: the fraction of
	// fully utilized worker steps for the synchronous engines, measured
	// busy-time share of the available cores for the free-running engine.
	Utilization float64
	// MaxObservedDelay is the largest forward→backward update gap seen at
	// any stage (bounded by 2(S−1) — Eq. 5).
	MaxObservedDelay int
	// Replicas is the number of pipeline replicas (cluster engine only;
	// single-pipeline engines report 0).
	Replicas int
	// Syncs counts completed weight-synchronization operations (cluster
	// engine only).
	Syncs int
	// AdmitDeferred counts Submits the free-running async engine deferred at
	// the bounded-staleness admission gate (Config.AdmitBound; clusters sum
	// their replicas'). Engines without the gate report 0.
	AdmitDeferred int
}

// EngineFactory constructs an engine over a staged network. Factories are
// invoked by NewEngine; the caller owns (and must Close) the result.
type EngineFactory func(net *nn.Network, cfg Config) Engine

var (
	engineMu       sync.RWMutex
	engineRegistry = map[string]EngineFactory{}
)

// RegisterEngine adds a named engine factory to the registry used by
// NewEngine and EngineNames. It panics on an empty name, a nil factory, or
// a duplicate registration — engine names are load-time constants, so a
// collision is a programming error, not a runtime condition.
func RegisterEngine(name string, factory EngineFactory) {
	if name == "" {
		panic("core: RegisterEngine with empty name")
	}
	if factory == nil {
		panic("core: RegisterEngine(" + name + ") with nil factory")
	}
	engineMu.Lock()
	defer engineMu.Unlock()
	if _, dup := engineRegistry[name]; dup {
		panic("core: RegisterEngine(" + name + ") registered twice")
	}
	engineRegistry[name] = factory
}

// EngineNames lists the registered engine selectors, sorted.
func EngineNames() []string {
	engineMu.RLock()
	defer engineMu.RUnlock()
	names := make([]string, 0, len(engineRegistry))
	for name := range engineRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterEngine("seq", func(net *nn.Network, cfg Config) Engine {
		return NewPBTrainer(net, cfg)
	})
	RegisterEngine("lockstep", func(net *nn.Network, cfg Config) Engine {
		return NewParallelPBTrainer(net, cfg)
	})
	RegisterEngine("async", func(net *nn.Network, cfg Config) Engine {
		return NewAsyncPBTrainer(net, cfg, ModeFree)
	})
	RegisterEngine("async-lockstep", func(net *nn.Network, cfg Config) Engine {
		return NewAsyncPBTrainer(net, cfg, ModeLockstep)
	})
}

// NewEngine constructs the named engine from the registry; the empty name
// selects the sequential reference. Callers must Close the result.
func NewEngine(kind string, net *nn.Network, cfg Config) (Engine, error) {
	if kind == "" {
		kind = "seq"
	}
	engineMu.RLock()
	factory := engineRegistry[kind]
	engineMu.RUnlock()
	if factory == nil {
		return nil, fmt.Errorf("core: unknown engine %q (want %s)", kind, strings.Join(EngineNames(), "|"))
	}
	return factory(net, cfg), nil
}

// ctxErr reports a context's error, treating nil as context.Background().
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Submit implements Engine for the sequential trainer: one Push plus one
// pipeline Step.
func (t *PBTrainer) Submit(ctx context.Context, x *tensor.Tensor, label int) ([]*Result, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	t.Push(x, label)
	if r := t.Step(); r != nil {
		t.emitDriver([]*Result{r})
		return []*Result{r}, nil
	}
	t.emitDriver(nil)
	return nil, nil
}

// Close implements Engine: it releases the trainer's kernel-worker groups.
// Idempotent; the trainer remains usable afterwards with serial kernels.
func (t *PBTrainer) Close() { closeParallels(t.pars) }

// Submit implements Engine for the barrier-parallel trainer.
func (t *ParallelPBTrainer) Submit(ctx context.Context, x *tensor.Tensor, label int) ([]*Result, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	t.Push(x, label)
	if r := t.Step(); r != nil {
		t.inner.emitDriver([]*Result{r})
		return []*Result{r}, nil
	}
	t.inner.emitDriver(nil)
	return nil, nil
}

// NumStages returns the pipeline depth S.
func (t *ParallelPBTrainer) NumStages() int { return t.inner.NumStages() }

// InputBuffer delegates to the inner trainer's retired-input free list.
func (t *ParallelPBTrainer) InputBuffer(shape ...int) *tensor.Tensor {
	return t.inner.InputBuffer(shape...)
}

// Stats delegates to the step-based accounting of the inner trainer.
func (t *ParallelPBTrainer) Stats() Stats { return t.inner.Stats() }

// augFallbackSeed seeds the RNG RunEpoch derives when an augmenter is
// supplied without one — a fixed constant, so the no-RNG path is
// deterministic run to run.
const augFallbackSeed = 0x5eed

// RunEpoch feeds one epoch of the dataset (in the order of perm, or
// sequentially if perm is nil) through any engine, draining at the end, and
// returns the mean training loss and accuracy. This is the engine-agnostic
// training loop — every trainer in the repo (the train.Trainer façade, the
// experiment runners, PBTrainer.TrainEpoch) funnels through it.
//
// aug may be nil. A non-nil augmenter with a nil rng used to crash deep
// inside Augmenter.Apply; RunEpoch now derives a deterministic seeded RNG
// instead (augFallbackSeed shifted by the engine's submitted-sample count,
// so successive epochs on one engine draw fresh augmentations rather than
// replaying the first epoch's), making augmented runs without an explicit
// RNG reproducible. Pass your own rng whenever the draw stream matters.
//
// sink, when non-nil, receives every completed sample's Result in
// completion order, as soon as the engine reports it — the streaming hook
// the callback layer builds on. ctx cancels the epoch: the partial means
// and ctx's error are returned, with samples possibly still in flight
// (Close the engine to abandon them).
func RunEpoch(ctx context.Context, e Engine, ds *data.Dataset, perm []int, aug data.Augmenter, rng *rand.Rand, sink func(*Result)) (meanLoss, acc float64, err error) {
	if aug != nil && rng == nil {
		// The pipeline is quiesced between epochs, so Submitted is a stable,
		// deterministic epoch offset here.
		rng = rand.New(rand.NewSource(augFallbackSeed + int64(e.Stats().Submitted)))
	}
	var lossMeter metrics.Meter
	correct, count := 0, 0
	record := func(rs []*Result) {
		for _, r := range rs {
			lossMeter.Add(r.Loss, 1)
			count++
			if r.Correct {
				correct++
			}
			if sink != nil {
				sink(r)
			}
		}
	}
	summarize := func(err error) (float64, float64, error) {
		if count == 0 {
			return 0, 0, err
		}
		return lossMeter.Mean(), float64(correct) / float64(count), err
	}
	n := ds.Len()
	shape := append([]int{1}, ds.Shape...)
	for i := 0; i < n; i++ {
		idx := i
		if perm != nil {
			idx = perm[i]
		}
		sample := ds.Samples[idx]
		if aug != nil {
			sample = aug.Apply(sample, rng)
		}
		// The engine owns each submitted tensor; InputBuffer hands back
		// retired ones, so the steady-state loop allocates no inputs.
		// SetFloat64s converts at the boundary when the engine runs at f32.
		x := e.InputBuffer(shape...)
		x.SetFloat64s(0, sample)
		rs, serr := e.Submit(ctx, x, ds.Labels[idx])
		record(rs)
		if serr != nil {
			return summarize(serr)
		}
	}
	rs, derr := e.Drain(ctx)
	record(rs)
	return summarize(derr)
}
