package core

import (
	"fmt"
	"math/rand"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Engine is the trainer interface shared by the three pipelined-
// backpropagation engines:
//
//   - "seq":      PBTrainer — single-threaded, cycle-accurate reference.
//   - "lockstep": ParallelPBTrainer — goroutine per stage, global barrier
//     per half-step; bit-identical to seq, parallel within a step.
//   - "async":    AsyncPBTrainer in ModeFree — free-running stages over
//     bounded queues, no barrier; staleness capped at D_s per stage.
//   - "async-lockstep": AsyncPBTrainer in ModeLockstep — the async runtime
//     driven as a deterministic systolic array; bit-identical to seq.
//
// Submit feeds one sample and returns whatever results completed; the
// engine takes ownership of x (its storage is recycled into the stage-0
// buffer pool once the sample's final update is applied — get the next
// input tensor from InputBuffer instead of reusing x). Drain quiesces the
// pipeline. ObservedDelays and Utilization are only meaningful on a
// quiesced pipeline.
type Engine interface {
	Submit(x *tensor.Tensor, label int) []*Result
	// InputBuffer returns a tensor of the given shape for the next Submit,
	// reusing a retired input buffer when one is available so steady-state
	// feeding allocates nothing.
	InputBuffer(shape ...int) *tensor.Tensor
	Drain() []*Result
	Close()
	NumStages() int
	Delays() []int
	ObservedDelays() []int
	Utilization(samplesCompleted int) float64
}

// EngineNames lists the accepted NewEngine selectors.
var EngineNames = []string{"seq", "lockstep", "async", "async-lockstep"}

// NewEngine constructs the named engine. Callers must Close it.
func NewEngine(kind string, net *nn.Network, cfg Config) (Engine, error) {
	switch kind {
	case "", "seq":
		return NewPBTrainer(net, cfg), nil
	case "lockstep":
		return NewParallelPBTrainer(net, cfg), nil
	case "async":
		return NewAsyncPBTrainer(net, cfg, ModeFree), nil
	case "async-lockstep":
		return NewAsyncPBTrainer(net, cfg, ModeLockstep), nil
	}
	return nil, fmt.Errorf("core: unknown engine %q (want seq|lockstep|async|async-lockstep)", kind)
}

// Submit implements Engine for the sequential trainer: one Push plus one
// pipeline Step.
func (t *PBTrainer) Submit(x *tensor.Tensor, label int) []*Result {
	t.Push(x, label)
	if r := t.Step(); r != nil {
		return []*Result{r}
	}
	return nil
}

// Close implements Engine (no resources to release).
func (t *PBTrainer) Close() {}

// Submit implements Engine for the barrier-parallel trainer.
func (t *ParallelPBTrainer) Submit(x *tensor.Tensor, label int) []*Result {
	t.Push(x, label)
	if r := t.Step(); r != nil {
		return []*Result{r}
	}
	return nil
}

// NumStages returns the pipeline depth S.
func (t *ParallelPBTrainer) NumStages() int { return t.inner.NumStages() }

// InputBuffer delegates to the inner trainer's retired-input free list.
func (t *ParallelPBTrainer) InputBuffer(shape ...int) *tensor.Tensor {
	return t.inner.InputBuffer(shape...)
}

// Utilization delegates to the step-based accounting of the inner trainer.
func (t *ParallelPBTrainer) Utilization(samplesCompleted int) float64 {
	return t.inner.Utilization(samplesCompleted)
}

// RunEpoch feeds one epoch of the dataset (in the order of perm, or
// sequentially if perm is nil) through any engine, draining at the end, and
// returns the mean training loss and accuracy. aug may be nil. This is the
// engine-agnostic equivalent of PBTrainer.TrainEpoch.
func RunEpoch(e Engine, ds *data.Dataset, perm []int, aug data.Augmenter, rng *rand.Rand) (meanLoss, acc float64) {
	var lossMeter metrics.Meter
	correct, count := 0, 0
	record := func(rs []*Result) {
		for _, r := range rs {
			lossMeter.Add(r.Loss, 1)
			count++
			if r.Correct {
				correct++
			}
		}
	}
	n := ds.Len()
	shape := append([]int{1}, ds.Shape...)
	for i := 0; i < n; i++ {
		idx := i
		if perm != nil {
			idx = perm[i]
		}
		sample := ds.Samples[idx]
		if aug != nil {
			sample = aug.Apply(sample, rng)
		}
		// The engine owns each submitted tensor; InputBuffer hands back
		// retired ones, so the steady-state loop allocates no inputs.
		x := e.InputBuffer(shape...)
		copy(x.Data, sample)
		record(e.Submit(x, ds.Labels[idx]))
	}
	record(e.Drain())
	if count == 0 {
		return 0, 0
	}
	return lossMeter.Mean(), float64(correct) / float64(count)
}
