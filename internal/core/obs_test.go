package core

import (
	"testing"
	"time"

	"repro/internal/obs"
	syncpol "repro/internal/sync"
)

// TestObsDoesNotPerturbTraining is the bus's bit-exactness contract: a run
// with the bus enabled and a live subscriber produces exactly the same
// weights as a run without it, engine by engine.
func TestObsDoesNotPerturbTraining(t *testing.T) {
	for _, engine := range []string{"seq", "lockstep", "async", "async-lockstep"} {
		t.Run(engine, func(t *testing.T) {
			seed := int64(77)
			netPlain, train, _ := trainSetup(3, seed)
			netObs, _, _ := trainSetup(3, seed)
			cfg := Config{LR: 0.05, Momentum: 0.9}

			plain, err := NewEngine(engine, netPlain, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer plain.Close()

			bus := obs.NewBus()
			defer bus.Close()
			sub := bus.Subscribe(64) // deliberately shallow: drops must not matter
			defer sub.Close()
			ocfg := cfg
			ocfg.Obs = bus
			observed, err := NewEngine(engine, netObs, ocfg)
			if err != nil {
				t.Fatal(err)
			}
			defer observed.Close()

			for _, e := range []Engine{plain, observed} {
				shape := append([]int{1}, train.Shape...)
				for i := 0; i < train.Len(); i++ {
					x := e.InputBuffer(shape...)
					copy(x.Data, train.Samples[i])
					submit(e, x, train.Labels[i])
				}
				drain(e)
			}

			if engine == "async" {
				// Free mode is scheduling-dependent; weights are not comparable
				// across runs. The bus contract there is covered by the other
				// modes plus the shared emit paths.
				return
			}
			p1, p2 := netPlain.Params(), netObs.Params()
			for i := range p1 {
				if !p1[i].W.AllClose(p2[i].W, 0) {
					t.Fatalf("engine %s: param %s differs with the bus enabled", engine, p1[i].Name)
				}
			}
		})
	}
}

// TestAggregatorMatchesEngineStats pins "Stats() is one subscriber among
// many": after a drain, the bus aggregator has folded the same completion
// count and utilization the engine's Stats() reports.
func TestAggregatorMatchesEngineStats(t *testing.T) {
	for _, engine := range []string{"seq", "lockstep", "async", "async-lockstep"} {
		t.Run(engine, func(t *testing.T) {
			net, train, _ := trainSetup(3, 101)
			bus := obs.NewBus()
			defer bus.Close()
			agg := obs.NewAggregator(bus)
			defer agg.Close()
			e, err := NewEngine(engine, net, Config{LR: 0.05, Momentum: 0.9, Obs: bus})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()

			shape := append([]int{1}, train.Shape...)
			for i := 0; i < train.Len(); i++ {
				x := e.InputBuffer(shape...)
				copy(x.Data, train.Samples[i])
				submit(e, x, train.Labels[i])
			}
			drain(e)

			stats := e.Stats()
			// The pump delivers asynchronously; wait for the drain summary.
			deadline := time.Now().Add(5 * time.Second)
			var snap obs.Snapshot
			for {
				snap = agg.Snapshot()
				if snap.HasEngineStats || time.Now().After(deadline) {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			if !snap.HasEngineStats {
				t.Fatal("no KindEngineStats drain summary reached the aggregator")
			}
			if snap.Completed != int64(stats.Completed) {
				t.Fatalf("aggregator completed = %d, Stats().Completed = %d", snap.Completed, stats.Completed)
			}
			if snap.EngineUtilization != stats.Utilization {
				t.Fatalf("aggregator utilization = %v, Stats().Utilization = %v", snap.EngineUtilization, stats.Utilization)
			}
			if len(snap.StalenessHist) == 0 {
				t.Fatal("no staleness events reached the aggregator")
			}
			// The histogram's largest delay is the engines' observed maximum.
			maxDelay := snap.StalenessHist[len(snap.StalenessHist)-1].Delay
			if maxDelay != int64(stats.MaxObservedDelay) {
				t.Fatalf("staleness hist max = %d, Stats().MaxObservedDelay = %d", maxDelay, stats.MaxObservedDelay)
			}
		})
	}
}

// TestClusterObsEmitsSyncClock verifies the cluster emits its sync-policy
// clock and drain summary at the driver level.
func TestClusterObsEmitsSyncClock(t *testing.T) {
	nets := clusterNets(2, 55)
	bus := obs.NewBus()
	defer bus.Close()
	agg := obs.NewAggregator(bus)
	defer agg.Close()
	c, err := NewCluster(nets, Config{LR: 0.05, Momentum: 0.9, Obs: bus},
		ClusterConfig{Engine: "seq", Policy: syncpol.AvgEvery{K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, train, _ := trainSetup(2, 55)
	shape := append([]int{1}, train.Shape...)
	for i := 0; i < train.Len(); i++ {
		x := c.InputBuffer(shape...)
		copy(x.Data, train.Samples[i])
		submit(c, x, train.Labels[i])
	}
	drain(c)
	stats := c.Stats()
	if stats.Syncs == 0 {
		t.Fatal("test harness: no syncs ran")
	}
	deadline := time.Now().Add(5 * time.Second)
	var snap obs.Snapshot
	for {
		snap = agg.Snapshot()
		if snap.SyncClock == int64(stats.Syncs) && snap.HasEngineStats {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("aggregator sync clock = %d (engine stats %v), want %d", snap.SyncClock, snap.HasEngineStats, stats.Syncs)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if snap.Completed != int64(stats.Completed) {
		t.Fatalf("aggregator completed = %d, cluster Stats().Completed = %d", snap.Completed, stats.Completed)
	}
}
