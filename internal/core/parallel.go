package core

import (
	"context"
	"sync"

	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// ParallelPBTrainer is a concurrent implementation of pipelined
// backpropagation: every stage runs on its own goroutine — its own
// "worker", as in the paper's hardware model (Fig. 1) — exchanging
// activations and gradients with its neighbors through channels. Workers
// advance in lockstep pipeline steps (a barrier per step), which makes the
// engine's weight trajectory bit-identical to the sequential PBTrainer;
// tests assert this equivalence. On a multi-core host the stage
// computations of one step run genuinely in parallel.
//
// The lockstep barrier models the paper's synchronous pipeline hardware; it
// is not an optimization for throughput on small models (channel overhead
// dominates tiny stages) but demonstrates that the engine's semantics are
// worker-local: each stage touches only its own parameters, optimizer state
// and context queue.
type ParallelPBTrainer struct {
	inner *PBTrainer
	// workers' synchronization.
	start   []chan phase
	done    []chan struct{}
	stopped bool
	wg      sync.WaitGroup
	// per-step shared buffers (written by neighbors, read next step).
	nextFwd []*inflight
	nextBwd []*nn.Packet
	// same-step loss handoff (last stage forward → last stage backward).
	lossGrad *nn.Packet
	result   *Result
	// pars are the per-stage kernel-worker groups (closed by Close).
	pars []*tensor.Parallel
}

// phase tells a worker which half-step to execute.
type phase int

const (
	phaseForward phase = iota
	phaseBackward
	phaseStop
)

// NewParallelPBTrainer builds the concurrent engine around the same stage
// state as NewPBTrainer.
func NewParallelPBTrainer(net *nn.Network, cfg Config) *ParallelPBTrainer {
	t := &ParallelPBTrainer{inner: newPBTrainer(net, cfg)}
	s := len(t.inner.stages)
	// All stages compute concurrently here, so the worker budget is split
	// per stage: one worker for the stage goroutine itself plus its share of
	// the surplus as kernel workers.
	t.pars = attachPerStageKernelWorkers(t.inner.stages, cfg.Workers)
	t.start = make([]chan phase, s)
	t.done = make([]chan struct{}, s)
	t.nextFwd = make([]*inflight, s)
	t.nextBwd = make([]*nn.Packet, s)
	for i := 0; i < s; i++ {
		t.start[i] = make(chan phase)
		t.done[i] = make(chan struct{})
		t.wg.Add(1)
		go t.worker(i)
	}
	return t
}

// worker is the per-stage goroutine: it waits for a phase signal, performs
// its forward or backward half-step touching only stage-local state and its
// slot in the shared next-step buffers, and reports completion.
func (t *ParallelPBTrainer) worker(i int) {
	defer t.wg.Done()
	// The lockstep barrier is synchronously paired: signalAll always sends a
	// phase and then receives the matching done, so neither side can wedge,
	// and the phaseStop token (not a ctx) is the engine's shutdown signal.
	//lint:allow(ctxselect) barrier receive is paired with signalAll's send; phaseStop is the shutdown path
	for ph := range t.start[i] {
		switch ph {
		case phaseForward:
			t.forwardStage(i)
		case phaseBackward:
			t.backwardStage(i)
		case phaseStop:
			t.done[i] <- struct{}{} //lint:allow(ctxselect) paired with signalAll's unconditional done receive
			return
		}
		t.done[i] <- struct{}{} //lint:allow(ctxselect) paired with signalAll's unconditional done receive
	}
}

// forwardStage mirrors PBTrainer.Step's forward sweep for one stage.
func (t *ParallelPBTrainer) forwardStage(i int) {
	in := t.inner.fwd[i]
	if in == nil {
		return
	}
	t.inner.fwd[i] = nil
	st := t.inner.stages[i]
	st.stall(false)
	horizon, form := t.inner.forwardHorizon(i)
	out := st.runForward(in, t.inner.Cfg.Mitigation, horizon, form)
	if i < len(t.inner.stages)-1 {
		in.packet = out // reuse the inflight wrapper for the next hop
		t.nextFwd[i+1] = in
		return
	}
	loss, correct, grad := st.runLossHead(t.inner.Net.Head, out, in.label)
	t.lossGrad = grad
	t.result = &Result{ID: in.id, Loss: loss, Correct: correct}
}

// backwardStage mirrors PBTrainer.Step's backward sweep for one stage.
func (t *ParallelPBTrainer) backwardStage(i int) {
	var dIn *nn.Packet
	if i == len(t.inner.stages)-1 {
		dIn = t.lossGrad
		t.lossGrad = nil
	} else {
		dIn = t.inner.bwd[i]
		t.inner.bwd[i] = nil
	}
	if dIn == nil {
		return
	}
	st := t.inner.stages[i]
	st.stall(true)
	dx := st.runBackward(dIn, t.inner.Cfg.Mitigation,
		t.inner.backwardHorizon(i), t.inner.Cfg.lrAt(t.inner.updateStep))
	if i == 0 {
		t.inner.outstanding--
		t.inner.completed++
		recycleInput(&t.inner.inputFree, dx.X)
	} else {
		t.nextBwd[i-1] = dx
	}
}

// Push queues a sample for the next step.
func (t *ParallelPBTrainer) Push(x *tensor.Tensor, label int) { t.inner.Push(x, label) }

// Outstanding reports in-flight samples.
func (t *ParallelPBTrainer) Outstanding() int { return t.inner.outstanding }

// Step advances all workers through one lockstep pipeline step and returns
// the completed sample's result, if any.
func (t *ParallelPBTrainer) Step() *Result {
	if t.stopped {
		panic("core: Step after Close")
	}
	if t.inner.pending != nil {
		t.inner.fwd[0] = t.inner.pending
		t.inner.pending = nil
	}
	t.result = nil
	// Forward half-step: all workers in parallel.
	t.signalAll(phaseForward)
	// Backward half-step.
	t.signalAll(phaseBackward)
	// Rotate buffers.
	copy(t.inner.fwd, t.nextFwd)
	copy(t.inner.bwd, t.nextBwd)
	for i := range t.nextFwd {
		t.nextFwd[i] = nil
		t.nextBwd[i] = nil
	}
	t.inner.step++
	t.inner.updateStep++
	t.inner.Steps++
	return t.result
}

// signalAll releases every worker into a phase and waits for completion.
func (t *ParallelPBTrainer) signalAll(ph phase) {
	for i := range t.start {
		t.start[i] <- ph
	}
	for i := range t.done {
		<-t.done[i]
	}
}

// Drain completes all in-flight samples. A cancelled ctx stops the drain
// early, returning the results collected so far and ctx's error.
func (t *ParallelPBTrainer) Drain(ctx context.Context) ([]*Result, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	var rs []*Result
	for t.inner.outstanding > 0 {
		if err := ctxErr(ctx); err != nil {
			return rs, err
		}
		if r := t.Step(); r != nil {
			rs = append(rs, r)
		}
	}
	t.inner.emitDriver(rs)
	emitDrainSummary(t.inner.obs, t.Stats())
	return rs, nil
}

// Close terminates the worker goroutines. The trainer is unusable after.
func (t *ParallelPBTrainer) Close() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.signalAll(phaseStop)
	t.wg.Wait()
	closeParallels(t.pars)
}

// StageOptimizer, StageParams, StageUpdates, SetStageUpdates, UpdateStep and
// SetUpdateStep delegate to the inner trainer so the lockstep engine
// satisfies checkpoint.PipelineTrainer (quiesce the pipeline around
// capture/restore). The lockstep schedule is bit-identical to the
// sequential engine, so resume is exact.
func (t *ParallelPBTrainer) StageOptimizer(i int) *optim.Momentum { return t.inner.StageOptimizer(i) }

// StageParams exposes stage i's parameters (for checkpointing).
func (t *ParallelPBTrainer) StageParams(i int) []*nn.Param { return t.inner.StageParams(i) }

// StageUpdates returns stage i's applied-update counter.
func (t *ParallelPBTrainer) StageUpdates(i int) int { return t.inner.StageUpdates(i) }

// SetStageUpdates restores stage i's update counter from a checkpoint.
func (t *ParallelPBTrainer) SetStageUpdates(i, updates int) { t.inner.SetStageUpdates(i, updates) }

// UpdateStep returns the global update-step counter (schedule position).
func (t *ParallelPBTrainer) UpdateStep() int { return t.inner.UpdateStep() }

// SetUpdateStep restores the schedule position from a checkpoint.
func (t *ParallelPBTrainer) SetUpdateStep(step int) { t.inner.SetUpdateStep(step) }

// Delays exposes the per-stage delays (for tests and tooling).
func (t *ParallelPBTrainer) Delays() []int { return t.inner.Delays() }

// ObservedDelays exposes the measured staleness per stage.
func (t *ParallelPBTrainer) ObservedDelays() []int { return t.inner.ObservedDelays() }
