package core

import (
	"math/rand"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// stageCtx is the per-sample state a stage keeps between its forward and
// backward pass: the layer contexts, optionally the weights used on the
// forward pass (for stashing), and the stage's update counter at forward
// time (for staleness measurement).
type stageCtx struct {
	ctx        any
	stash      [][]float64
	fwdUpdates int
	id         int
}

// stageState is the runtime state of one pipeline stage.
type stageState struct {
	stage   nn.Stage
	params  []*nn.Param
	opt     *optim.Momentum
	delay   int
	queue   []stageCtx
	updates int
	// maxObserved tracks the largest forward→backward update gap seen, which
	// tests compare against the analytic D_s = 2(S−1−s).
	maxObserved int
}

// inflight is a sample travelling forward through the pipeline.
type inflight struct {
	packet *nn.Packet
	label  int
	id     int
}

// Result summarizes one completed training sample.
type Result struct {
	ID      int
	Loss    float64
	Correct bool
}

// PBTrainer trains a network with fine-grained pipelined backpropagation at
// update size one. Construct with NewPBTrainer; feed samples with Push and
// advance with Step, or use TrainEpoch for the common loop.
type PBTrainer struct {
	Net    *nn.Network
	Cfg    Config
	stages []*stageState
	fwd    []*inflight
	bwd    []*nn.Packet
	// lossGrad carries the same-step backward input of the last stage.
	pending     *inflight
	outstanding int
	nextID      int
	step        int
	updateStep  int
	// Steps counts pipeline steps, used for utilization accounting.
	Steps int
}

// NewPBTrainer builds the engine. The network's stages become pipeline
// stages; per-stage delays and mitigation coefficients are fixed at
// construction from the pipeline geometry.
func NewPBTrainer(net *nn.Network, cfg Config) *PBTrainer {
	s := net.NumStages()
	delays := StageDelays(s)
	t := &PBTrainer{Net: net, Cfg: cfg}
	for i, st := range net.Stages {
		ss := &stageState{stage: st, params: st.Params(), delay: delays[i]}
		o := optim.NewMomentum(cfg.LR, cfg.Momentum)
		o.WeightDecay = cfg.WeightDecay
		o.A, o.B = 1, 0
		if cfg.Mitigation.SC {
			scale := cfg.Mitigation.SCScale
			if scale == 0 {
				scale = 1
			}
			o.A, o.B = optim.SpikeCoefficients(cfg.Momentum, scale*float64(delays[i]))
		}
		if cfg.Mitigation.LWP && cfg.Mitigation.LWPForm == optim.LWPWeight {
			o.TrackPrev = true
		}
		ss.opt = o
		t.stages = append(t.stages, ss)
	}
	t.fwd = make([]*inflight, s)
	t.bwd = make([]*nn.Packet, s)
	return t
}

// NumStages returns the pipeline depth S.
func (t *PBTrainer) NumStages() int { return len(t.stages) }

// Delays returns the per-stage gradient delays.
func (t *PBTrainer) Delays() []int {
	d := make([]int, len(t.stages))
	for i, s := range t.stages {
		d[i] = s.delay
	}
	return d
}

// ObservedDelays returns the maximum forward→backward update gap measured
// per stage since construction.
func (t *PBTrainer) ObservedDelays() []int {
	d := make([]int, len(t.stages))
	for i, s := range t.stages {
		d[i] = s.maxObserved
	}
	return d
}

// Outstanding returns the number of samples currently in the pipeline.
func (t *PBTrainer) Outstanding() int { return t.outstanding }

// Push queues a sample to enter the pipeline on the next Step. It panics if
// a sample is already pending (one sample enters per step).
func (t *PBTrainer) Push(x *tensor.Tensor, label int) {
	if t.pending != nil {
		panic("core: Push called twice without Step")
	}
	t.pending = &inflight{packet: nn.NewPacket(x), label: label, id: t.nextID}
	t.nextID++
	t.outstanding++
}

// forwardHorizon returns the weight-prediction horizon used at the forward
// pass of stage s, or 0 for none.
func (t *PBTrainer) forwardHorizon(s int) (float64, optim.LWPForm) {
	return fwdHorizonFor(t.Cfg.Mitigation, len(t.stages), s, t.stages[s].delay)
}

// backwardHorizon returns the prediction horizon used at the backward pass
// (SpecTrain only).
func (t *PBTrainer) backwardHorizon(s int) float64 {
	return bwdHorizonFor(t.Cfg.Mitigation, s)
}

// swapIn replaces stage parameters with the provided data slices, returning
// the originals for restoration.
func swapIn(params []*nn.Param, datas [][]float64) [][]float64 {
	old := make([][]float64, len(params))
	for i, p := range params {
		old[i] = p.SwapData(datas[i])
	}
	return old
}

// Step advances the pipeline by one step: every stage performs its forward
// and backward transformation and applies at most one weight update. It
// returns the result of the sample whose loss was computed this step, if
// any.
func (t *PBTrainer) Step() *Result {
	s := len(t.stages)
	nextFwd := make([]*inflight, s)
	nextBwd := make([]*nn.Packet, s)
	var result *Result
	var lossGrad *nn.Packet

	if t.pending != nil {
		t.fwd[0] = t.pending
		t.pending = nil
	}

	// Forward sweep. Stage s processes the activation that arrived this
	// step; its output arrives at stage s+1 on the next step.
	for i := 0; i < s; i++ {
		in := t.fwd[i]
		if in == nil {
			continue
		}
		t.fwd[i] = nil
		st := t.stages[i]
		horizon, form := t.forwardHorizon(i)
		out := st.runForward(in, t.Cfg.Mitigation, horizon, form)
		t.route(i, out, in, nextFwd, &lossGrad, &result)
	}

	// Backward sweep. Stage s consumes the gradient that arrived this step
	// (for the last stage: the loss gradient computed this very step) and
	// updates its weights immediately — update size one, no draining.
	for i := s - 1; i >= 0; i-- {
		var dIn *nn.Packet
		if i == s-1 {
			dIn = lossGrad
		} else {
			dIn = t.bwd[i]
			t.bwd[i] = nil
		}
		if dIn == nil {
			continue
		}
		st := t.stages[i]
		dx := st.runBackward(dIn, t.Cfg.Mitigation, t.backwardHorizon(i), t.Cfg.lrAt(t.updateStep))
		if i == 0 {
			t.outstanding--
		} else {
			nextBwd[i-1] = dx
		}
	}

	t.fwd = nextFwd
	t.bwd = nextBwd
	t.step++
	t.updateStep++
	t.Steps++
	return result
}

// route delivers a stage's forward output: to the next stage's input slot,
// or — at the last stage — through the loss head, producing the same-step
// backward input.
func (t *PBTrainer) route(i int, out *nn.Packet, in *inflight, nextFwd []*inflight,
	lossGrad **nn.Packet, result **Result) {
	if i < len(t.stages)-1 {
		nextFwd[i+1] = &inflight{packet: out, label: in.label, id: in.id}
		return
	}
	loss, dl := t.Net.Head.Loss(out.X, []int{in.label})
	correct := nn.Accuracy(out.X, []int{in.label}) == 1
	*lossGrad = nn.NewPacket(dl)
	*result = &Result{ID: in.id, Loss: loss, Correct: correct}
}

// push appends a context to the stage FIFO.
func (s *stageState) push(ctx any, stash [][]float64, id int) {
	s.queue = append(s.queue, stageCtx{ctx: ctx, stash: stash, fwdUpdates: s.updates, id: id})
}

// pop removes the oldest context (samples complete in order).
func (s *stageState) pop() stageCtx {
	if len(s.queue) == 0 {
		panic("core: backward with empty context queue at stage " + s.stage.Name())
	}
	c := s.queue[0]
	s.queue = s.queue[1:]
	return c
}

// Drain advances the pipeline without feeding new samples until every
// in-flight sample has completed, returning their results.
func (t *PBTrainer) Drain() []*Result {
	var rs []*Result
	for t.outstanding > 0 {
		if r := t.Step(); r != nil {
			rs = append(rs, r)
		}
	}
	return rs
}

// TrainEpoch feeds one epoch of the dataset (in the order of perm, or
// sequentially if perm is nil) through the pipeline, draining at the end,
// and returns the mean training loss and accuracy. aug may be nil.
func (t *PBTrainer) TrainEpoch(ds *data.Dataset, perm []int, aug data.Augmenter, rng *rand.Rand) (meanLoss, acc float64) {
	return RunEpoch(t, ds, perm, aug, rng)
}

// Utilization returns the fraction of fully utilized worker steps over the
// trainer's lifetime: each of the S workers can do one forward plus one
// backward per step; a completed sample contributes 2S work units.
func (t *PBTrainer) Utilization(samplesCompleted int) float64 {
	if t.Steps == 0 {
		return 0
	}
	capacity := float64(2 * len(t.stages) * t.Steps)
	return float64(2*len(t.stages)*samplesCompleted) / capacity
}

// StageOptimizer exposes stage i's optimizer (for checkpointing and
// inspection). Stage optimizers are independent; see DESIGN.md.
func (t *PBTrainer) StageOptimizer(i int) *optim.Momentum { return t.stages[i].opt }
