package core

import (
	"context"
	"math/rand"
	"time"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// stageCtx is the per-sample state a stage keeps between its forward and
// backward pass: the layer contexts, optionally the weights used on the
// forward pass (for stashing), and the stage's update counter at forward
// time (for staleness measurement).
type stageCtx struct {
	ctx        any
	stash      [][]float64
	fwdUpdates int
	id         int
}

// stageState is the runtime state of one pipeline stage.
type stageState struct {
	stage  nn.Stage
	params []*nn.Param
	opt    *optim.Momentum
	delay  int
	// idx is the stage's pipeline position (set at construction).
	idx int
	// reduce, when non-nil, is invoked between gradient computation and the
	// optimizer step of every weight update — the cluster's sync-grad policy
	// installs a cross-replica averaging barrier here (cluster.go). Nil for
	// standalone engines.
	reduce func(stage int, params []*nn.Param)
	// queue is a ring buffer of pending per-sample contexts: qhead indexes
	// the oldest entry and qlen counts entries. Outstanding contexts per
	// stage are bounded (≤ delay+2), so the ring stops growing — and the
	// hot path stops allocating — after the pipeline fills.
	queue   []stageCtx
	qhead   int
	qlen    int
	updates int
	// maxObserved tracks the largest forward→backward update gap seen, which
	// tests compare against the analytic D_s = 2(S−1−s).
	maxObserved int
	// arena is the stage's private buffer pool (nil = unpooled reference
	// mode). Only the goroutine driving the stage may touch it.
	arena *tensor.Arena
	// par is the stage's intra-kernel worker group (nil = serial kernels).
	// Engines assign it from Config.Workers — see attachKernelWorkers. Like
	// the arena, it is only driven by the goroutine running the stage.
	par *tensor.Parallel
	// labelBuf backs the one-element label slice of the loss head, so the
	// hot path does not allocate it per sample.
	labelBuf [1]int
	// obs, when non-nil, receives the stage's observability events (per-
	// backward staleness; the async engine adds busy time and queue depth).
	// Only the goroutine driving the stage emits — one producer ring per
	// stage keeps the bus topology single-producer (obs.go).
	obs *obs.Producer
	// chaos, when non-nil, is Config.StageDelay: the fault-injection hook
	// consulted (via stall) before each forward/backward transformation.
	chaos func(ChaosPoint) time.Duration
}

// inflight is a sample travelling forward through the pipeline.
type inflight struct {
	packet *nn.Packet
	label  int
	id     int
}

// Result summarizes one completed training sample.
type Result struct {
	ID      int
	Loss    float64
	Correct bool
}

// maxFreeInputs bounds the driver-side free list of recycled input tensors.
const maxFreeInputs = 8

// PBTrainer trains a network with fine-grained pipelined backpropagation at
// update size one. Construct with NewPBTrainer; feed samples with Push and
// advance with Step, or use TrainEpoch for the common loop.
type PBTrainer struct {
	Net    *nn.Network
	Cfg    Config
	stages []*stageState
	fwd    []*inflight
	bwd    []*nn.Packet
	// lossGrad carries the same-step backward input of the last stage.
	pending     *inflight
	outstanding int
	completed   int
	nextID      int
	step        int
	updateStep  int
	// Steps counts pipeline steps, used for utilization accounting.
	Steps int
	// inputFree holds input tensors retired by stage 0's backward pass, for
	// reuse by InputBuffer (bounded by maxFreeInputs).
	inputFree []*tensor.Tensor
	// dtype is the network's parameter dtype, cached at construction:
	// InputBuffer runs once per sample and Network.DType walks the parameter
	// list, which would allocate on the steady-state feeding path.
	dtype tensor.DType
	// obs is the driver-side producer for Config.Obs (nil without a bus).
	obs *obs.Producer
	// pars are the kernel-worker groups this trainer owns (closed by Close).
	pars []*tensor.Parallel
}

// NewPBTrainer builds the engine. The network's stages become pipeline
// stages; per-stage delays and mitigation coefficients are fixed at
// construction from the pipeline geometry. Unless cfg.Unpooled is set,
// every stage gets a private tensor arena so steady-state training reuses
// all activation/gradient buffers.
func NewPBTrainer(net *nn.Network, cfg Config) *PBTrainer {
	t := newPBTrainer(net, cfg)
	// The sequential engine drives stages one at a time, so the whole
	// Config.Workers budget becomes one kernel group shared by every stage.
	t.pars = attachSharedKernelWorkers(t.stages, cfg.Workers)
	return t
}

// newPBTrainer builds the per-stage state without attaching kernel-worker
// groups; the concurrent engines reuse it and split Config.Workers their
// own way (see workers.go).
func newPBTrainer(net *nn.Network, cfg Config) *PBTrainer {
	s := net.NumStages()
	delays := StageDelays(s)
	t := &PBTrainer{Net: net, Cfg: cfg, dtype: net.DType()}
	for i, st := range net.Stages {
		ss := &stageState{stage: st, params: st.Params(), delay: delays[i], idx: i, chaos: cfg.StageDelay}
		if !cfg.Unpooled {
			ss.arena = tensor.NewArena()
		}
		o := optim.NewMomentum(cfg.LR, cfg.Momentum)
		o.WeightDecay = cfg.WeightDecay
		o.A, o.B = 1, 0
		if cfg.Mitigation.SC {
			scale := cfg.Mitigation.SCScale
			if scale == 0 {
				scale = 1
			}
			o.A, o.B = optim.SpikeCoefficients(cfg.Momentum, scale*float64(delays[i]))
		}
		if cfg.Mitigation.LWP && cfg.Mitigation.LWPForm == optim.LWPWeight {
			o.TrackPrev = true
		}
		ss.opt = o
		t.stages = append(t.stages, ss)
	}
	t.fwd = make([]*inflight, s)
	t.bwd = make([]*nn.Packet, s)
	attachStageObs(cfg.Obs, t.stages)
	t.obs = driverProducer(cfg.Obs)
	return t
}

// NumStages returns the pipeline depth S.
func (t *PBTrainer) NumStages() int { return len(t.stages) }

// Delays returns the per-stage gradient delays.
func (t *PBTrainer) Delays() []int {
	d := make([]int, len(t.stages))
	for i, s := range t.stages {
		d[i] = s.delay
	}
	return d
}

// ObservedDelays returns the maximum forward→backward update gap measured
// per stage since construction.
func (t *PBTrainer) ObservedDelays() []int {
	d := make([]int, len(t.stages))
	for i, s := range t.stages {
		d[i] = s.maxObserved
	}
	return d
}

// Outstanding returns the number of samples currently in the pipeline.
func (t *PBTrainer) Outstanding() int { return t.outstanding }

// Push queues a sample to enter the pipeline on the next Step, taking
// ownership of x (the engine recycles it once the sample completes; use
// InputBuffer to get a recycled tensor back). It panics if a sample is
// already pending (one sample enters per step).
func (t *PBTrainer) Push(x *tensor.Tensor, label int) {
	if t.pending != nil {
		panic("core: Push called twice without Step")
	}
	t.pending = &inflight{packet: nn.NewPacket(x), label: label, id: t.nextID}
	t.nextID++
	t.outstanding++
}

// InputBuffer returns a tensor of the given shape for the next Push/Submit,
// reusing a retired input buffer when one is available.
func (t *PBTrainer) InputBuffer(shape ...int) *tensor.Tensor {
	return takeInput(&t.inputFree, t.dtype, shape)
}

// takeInput pops a recycled input of matching size and dtype from free, or
// allocates at the engine's dtype.
func takeInput(free *[]*tensor.Tensor, dt tensor.DType, shape []int) *tensor.Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	for len(*free) > 0 {
		l := *free
		x := l[len(l)-1]
		l[len(l)-1] = nil
		*free = l[:len(l)-1]
		if x.Size() == n && x.DType() == dt {
			x.SetShape(shape...)
			return x
		}
	}
	return tensor.NewDT(dt, shape...)
}

// recycleInput stores a retired input tensor for reuse, dropping it when the
// free list is full.
func recycleInput(free *[]*tensor.Tensor, x *tensor.Tensor) {
	if x == nil || len(*free) >= maxFreeInputs {
		return
	}
	*free = append(*free, x)
}

// forwardHorizon returns the weight-prediction horizon used at the forward
// pass of stage s, or 0 for none.
func (t *PBTrainer) forwardHorizon(s int) (float64, optim.LWPForm) {
	return fwdHorizonFor(t.Cfg.Mitigation, len(t.stages), s, t.stages[s].delay)
}

// backwardHorizon returns the prediction horizon used at the backward pass
// (SpecTrain only).
func (t *PBTrainer) backwardHorizon(s int) float64 {
	return bwdHorizonFor(t.Cfg.Mitigation, s)
}

// swapIn replaces stage parameters with the provided data slices, returning
// the originals for restoration.
func swapIn(params []*nn.Param, datas [][]float64) [][]float64 {
	old := make([][]float64, len(params))
	for i, p := range params {
		old[i] = p.SwapData(datas[i])
	}
	return old
}

// Step advances the pipeline by one step: every stage performs its forward
// and backward transformation and applies at most one weight update. It
// returns the result of the sample whose loss was computed this step, if
// any.
func (t *PBTrainer) Step() *Result {
	s := len(t.stages)
	var result *Result
	var lossGrad *nn.Packet

	if t.pending != nil {
		t.fwd[0] = t.pending
		t.pending = nil
	}

	// Forward sweep. Stage s processes the activation that arrived this
	// step; its output arrives at stage s+1 on the next step: descending
	// order lets stage i write directly into t.fwd[i+1] (already consumed
	// this step) instead of double-buffering, and the incoming inflight
	// wrapper is reused for the outgoing activation. Stage compute touches
	// only stage-local state, so the within-step order is immaterial.
	for i := s - 1; i >= 0; i-- {
		in := t.fwd[i]
		if in == nil {
			continue
		}
		t.fwd[i] = nil
		st := t.stages[i]
		st.stall(false)
		horizon, form := t.forwardHorizon(i)
		out := st.runForward(in, t.Cfg.Mitigation, horizon, form)
		if i < s-1 {
			in.packet = out
			t.fwd[i+1] = in
			continue
		}
		var loss float64
		var correct bool
		loss, correct, lossGrad = st.runLossHead(t.Net.Head, out, in.label)
		result = &Result{ID: in.id, Loss: loss, Correct: correct}
	}

	// Backward sweep. Stage s consumes the gradient that arrived this step
	// (for the last stage: the loss gradient computed this very step) and
	// updates its weights immediately — update size one, no draining.
	// Ascending order lets stage i write directly into t.bwd[i-1] (already
	// consumed this step) for next-step delivery; per-stage updates are
	// independent, so the compute order within a step does not affect the
	// trajectory.
	for i := 0; i < s; i++ {
		var dIn *nn.Packet
		if i == s-1 {
			dIn = lossGrad
		} else {
			dIn = t.bwd[i]
			t.bwd[i] = nil
		}
		if dIn == nil {
			continue
		}
		st := t.stages[i]
		st.stall(true)
		dx := st.runBackward(dIn, t.Cfg.Mitigation, t.backwardHorizon(i), t.Cfg.lrAt(t.updateStep))
		if i == 0 {
			t.outstanding--
			t.completed++
			recycleInput(&t.inputFree, dx.X)
		} else {
			t.bwd[i-1] = dx
		}
	}

	t.step++
	t.updateStep++
	t.Steps++
	return result
}

// pending reports the number of contexts (samples) awaiting their backward
// pass at this stage.
func (s *stageState) pending() int { return s.qlen }

// push appends a context to the stage FIFO.
func (s *stageState) push(ctx any, stash [][]float64, id int) {
	if s.qlen == len(s.queue) {
		// Grow the ring, restoring FIFO order into the new storage.
		grown := make([]stageCtx, 2*s.qlen+4)
		for i := 0; i < s.qlen; i++ {
			grown[i] = s.queue[(s.qhead+i)%len(s.queue)]
		}
		s.queue = grown
		s.qhead = 0
	}
	s.queue[(s.qhead+s.qlen)%len(s.queue)] = stageCtx{ctx: ctx, stash: stash, fwdUpdates: s.updates, id: id}
	s.qlen++
}

// pop removes the oldest context (samples complete in order).
func (s *stageState) pop() stageCtx {
	if s.qlen == 0 {
		panic("core: backward with empty context queue at stage " + s.stage.Name())
	}
	c := s.queue[s.qhead]
	s.queue[s.qhead] = stageCtx{}
	s.qhead = (s.qhead + 1) % len(s.queue)
	s.qlen--
	return c
}

// Drain advances the pipeline without feeding new samples until every
// in-flight sample has completed, returning their results. A cancelled ctx
// stops the drain early, returning the results collected so far and ctx's
// error; remaining samples stay in flight.
func (t *PBTrainer) Drain(ctx context.Context) ([]*Result, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	var rs []*Result
	for t.outstanding > 0 {
		if err := ctxErr(ctx); err != nil {
			return rs, err
		}
		if r := t.Step(); r != nil {
			rs = append(rs, r)
		}
	}
	t.emitDriver(rs)
	emitDrainSummary(t.obs, t.Stats())
	return rs, nil
}

// emitDriver publishes the driver-side view — completed samples and the
// engine-level queue depth — after a Submit or Drain.
func (t *PBTrainer) emitDriver(rs []*Result) {
	if t.obs == nil {
		return
	}
	emitResults(t.obs, t.completed, rs)
	t.obs.Emit(obs.Event{Kind: obs.KindQueueDepth, Stage: -1, Count: int64(t.outstanding)})
}

// TrainEpoch feeds one epoch of the dataset (in the order of perm, or
// sequentially if perm is nil) through the pipeline, draining at the end,
// and returns the mean training loss and accuracy. aug may be nil. It is
// RunEpoch without cancellation or streaming — the convenience form tests
// and ablations use.
func (t *PBTrainer) TrainEpoch(ds *data.Dataset, perm []int, aug data.Augmenter, rng *rand.Rand) (meanLoss, acc float64) {
	meanLoss, acc, _ = RunEpoch(context.Background(), t, ds, perm, aug, rng, nil)
	return meanLoss, acc
}

// Stats snapshots the step-based accounting: utilization is the fraction of
// fully utilized worker steps over the trainer's lifetime — each of the S
// workers can do one forward plus one backward per step, and a completed
// sample contributes 2S work units.
func (t *PBTrainer) Stats() Stats {
	s := Stats{
		Stages:    len(t.stages),
		Submitted: t.nextID,
		Completed: t.completed,
		Steps:     t.Steps,
	}
	if t.Steps > 0 {
		s.Utilization = float64(2*len(t.stages)*t.completed) / float64(2*len(t.stages)*t.Steps)
	}
	for _, st := range t.stages {
		if st.maxObserved > s.MaxObservedDelay {
			s.MaxObservedDelay = st.maxObserved
		}
	}
	return s
}

// StageOptimizer exposes stage i's optimizer (for checkpointing and
// inspection). Stage optimizers are independent; see DESIGN.md.
func (t *PBTrainer) StageOptimizer(i int) *optim.Momentum { return t.stages[i].opt }

// StageParams exposes stage i's parameters (for checkpointing).
func (t *PBTrainer) StageParams(i int) []*nn.Param { return t.stages[i].params }

// StageUpdates returns stage i's applied-update counter (for checkpointing).
func (t *PBTrainer) StageUpdates(i int) int { return t.stages[i].updates }

// SetStageUpdates restores stage i's update counter from a checkpoint.
func (t *PBTrainer) SetStageUpdates(i, updates int) { t.stages[i].updates = updates }

// UpdateStep returns the global update-step counter (the LR-schedule
// position), for checkpointing.
func (t *PBTrainer) UpdateStep() int { return t.updateStep }

// SetUpdateStep restores the schedule position from a checkpoint.
func (t *PBTrainer) SetUpdateStep(step int) {
	t.step = step
	t.updateStep = step
}
