package core

import (
	"math/rand"
	stdsync "sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/models"
	syncpol "repro/internal/sync"
)

// TestStageDelayDoesNotPerturbTraining pins the fault-injection contract: an
// injected stall is pure wall-clock — the weight trajectory and result stream
// with a StageDelay hook installed are bit-identical to a run without one,
// for every engine whose schedule is deterministic.
func TestStageDelayDoesNotPerturbTraining(t *testing.T) {
	train, _ := data.GaussianBlobs(8, 4, 24, 0, 2.5, 1.0, 11)
	perm := rand.New(rand.NewSource(5)).Perm(train.Len())
	for _, engine := range []string{"seq", "lockstep", "async-lockstep"} {
		t.Run(engine, func(t *testing.T) {
			cfg := ScaledConfig(0.05, 0.9, 32, 1)
			plainNet := clusterNets(1, 21)[0]
			plain, err := NewEngine(engine, plainNet, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer plain.Close()
			plainRes := feedEpoch(plain, train, perm, false)

			hookNet := clusterNets(1, 21)[0]
			hcfg := cfg
			var mu stdsync.Mutex
			points := 0
			hcfg.StageDelay = func(p ChaosPoint) time.Duration {
				mu.Lock()
				points++
				mu.Unlock()
				if p.Replica != -1 {
					t.Errorf("bare engine reported replica %d, want -1", p.Replica)
				}
				if p.Stage == 1 && p.Backward && p.Update%5 == 0 {
					return 100 * time.Microsecond
				}
				return 0
			}
			hooked, err := NewEngine(engine, hookNet, hcfg)
			if err != nil {
				t.Fatal(err)
			}
			defer hooked.Close()
			hookedRes := feedEpoch(hooked, train, perm, false)

			weightsEqual(t, engine, plainNet, hookNet)
			resultsEqual(t, engine, plainRes, hookedRes)
			if points == 0 {
				t.Fatal("StageDelay hook never consulted")
			}
		})
	}
}

// TestAdmitBound pins the bounded-staleness admission gate of the
// free-running async engine: with AdmitBound=b the in-flight count never
// exceeds b, deferred admissions are counted, and every sample still
// completes.
func TestAdmitBound(t *testing.T) {
	const bound = 3
	train, _ := data.GaussianBlobs(8, 4, 32, 0, 2.5, 1.0, 13)
	cfg := ScaledConfig(0.05, 0.9, 32, 1)
	cfg.AdmitBound = bound
	net := models.DeepMLP(8, 10, 4, 4, 31)
	e := NewAsyncPBTrainer(net, cfg, ModeFree)
	defer e.Close()

	shape := append([]int{1}, train.Shape...)
	completed := 0
	for i := 0; i < train.Len(); i++ {
		x := e.InputBuffer(shape...)
		copy(x.Data, train.Samples[i])
		completed += len(submit(e, x, train.Labels[i]))
		if got := e.Outstanding(); got > bound {
			t.Fatalf("after submit %d: %d samples in flight, bound %d", i, got, bound)
		}
	}
	completed += len(drain(e))
	if completed != train.Len() {
		t.Fatalf("completed %d samples, want %d", completed, train.Len())
	}
	s := e.Stats()
	if s.AdmitDeferred == 0 {
		t.Fatalf("pipeline deeper than the bound never deferred an admission: %+v", s)
	}
}

// TestAdmitBoundIgnoredInLockstep pins the mode gate: the lockstep async
// schedule only advances on driver tokens, so gating Submit on in-flight
// count would deadlock — the bound must be a free-mode-only knob.
func TestAdmitBoundIgnoredInLockstep(t *testing.T) {
	train, _ := data.GaussianBlobs(8, 4, 16, 0, 2.5, 1.0, 17)
	cfg := ScaledConfig(0.05, 0.9, 32, 1)
	cfg.AdmitBound = 1 // far below the pipeline's natural occupancy
	net := models.DeepMLP(8, 10, 4, 4, 33)
	e := NewAsyncPBTrainer(net, cfg, ModeLockstep)
	defer e.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		feedEpoch(e, train, rand.New(rand.NewSource(1)).Perm(train.Len()), false)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("lockstep epoch wedged — admission gate engaged in lockstep mode")
	}
	if s := e.Stats(); s.AdmitDeferred != 0 {
		t.Fatalf("lockstep engine deferred %d admissions, want 0", s.AdmitDeferred)
	}
}

// TestClusterChaosPointIdentity checks that a cluster rewrites
// ChaosPoint.Replica with each replica's join-order identity — and that the
// identity is stable across removals: after removing slot 0 and joining a new
// replica, the hook sees identities {1, 2}, never a reused 0.
func TestClusterChaosPointIdentity(t *testing.T) {
	train, _ := data.GaussianBlobs(8, 4, 24, 0, 2.5, 1.0, 19)
	perm := rand.New(rand.NewSource(7)).Perm(train.Len())
	cfg := ScaledConfig(0.05, 0.9, 32, 2)
	var mu stdsync.Mutex
	seen := map[int]bool{}
	cfg.StageDelay = func(p ChaosPoint) time.Duration {
		mu.Lock()
		seen[p.Replica] = true
		mu.Unlock()
		return 0
	}
	nets := clusterNets(2, 71)
	cl, err := NewCluster(nets, cfg, ClusterConfig{Engine: "seq", Policy: syncpol.None{}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	feedSlice(cl, train, perm[:12])
	drain(cl)
	mu.Lock()
	if !seen[0] || !seen[1] {
		mu.Unlock()
		t.Fatalf("founder identities not observed: %v", seen)
	}
	seen = map[int]bool{}
	mu.Unlock()

	if err := cl.RemoveReplica(0); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddReplica(models.DeepMLP(8, 10, 4, 4, 88)); err != nil {
		t.Fatal(err)
	}
	feedSlice(cl, train, perm[12:])
	drain(cl)
	mu.Lock()
	defer mu.Unlock()
	if seen[0] {
		t.Fatal("identity 0 reused after its replica was removed")
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("post-change identities {1,2} not observed: %v", seen)
	}
}
