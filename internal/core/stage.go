package core

import (
	"time"

	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// This file holds the engine-independent per-stage compute: the forward and
// backward transformation of one sample at one stage, including the
// mitigation machinery (weight prediction, stashing, spike compensation via
// the optimizer, gradient shrinking). The sequential PBTrainer, the lockstep
// ParallelPBTrainer and the free-running AsyncPBTrainer all drive these same
// routines with different schedules; only the scheduling differs between
// engines, never the math.
//
// Each stage owns a tensor.Arena (nil when Config.Unpooled is set): all
// activation, gradient and im2col buffers the stage's compute needs are
// drawn from and recycled into it, so steady-state training through the
// core layers allocates nothing on the hot path (the ablation-only
// alternative normalizers still allocate small context slices — see
// DESIGN.md §7 for the scope and the ownership rules). The arena is only
// ever touched by the goroutine driving the stage.

// fwdHorizonFor returns the weight-prediction horizon and form used at the
// forward pass of stage i in an s-stage pipeline whose stage-i delay is
// delay. Zero horizon means no prediction.
func fwdHorizonFor(mit Mitigation, s, i, delay int) (float64, optim.LWPForm) {
	if mit.SpecTrain {
		// Vertical sync: predict to the sample's final update time,
		// 2(S−1)−s steps ahead of this forward pass (Appendix C).
		return float64(2*(s-1) - i), optim.LWPVelocity
	}
	if mit.LWP {
		scale := mit.LWPScale
		if scale == 0 {
			scale = 1
		}
		return scale * float64(delay), mit.LWPForm
	}
	return 0, optim.LWPVelocity
}

// bwdHorizonFor returns the prediction horizon used at the backward pass of
// stage i (SpecTrain only).
func bwdHorizonFor(mit Mitigation, i int) float64 {
	if mit.SpecTrain {
		return float64(i)
	}
	return 0
}

// forwardUnder is the single forward primitive every engine drives: it runs
// one stage's Forward, optionally under a temporarily installed read-only
// weight view (prediction or stashed weights), and hands back the output
// packet plus the stage context. The view is installed by pointer-swapping
// parameter storage and restored before returning, so the stage's parameters
// are never mutated — forward compute is a pure function of (weights, input)
// regardless of which view it reads.
func forwardUnder(s nn.Stage, params []*nn.Param, view [][]float64, p *nn.Packet, ar *tensor.Arena, par *tensor.Parallel) (*nn.Packet, any) {
	if len(view) == 0 || len(params) == 0 {
		return s.Forward(p, ar, par)
	}
	old := swapIn(params, view)
	out, ctx := s.Forward(p, ar, par)
	swapIn(params, old)
	return out, ctx
}

// stall consults the fault-injection hook (Config.StageDelay) before a stage
// transformation and sleeps out any injected straggle. Engines call it from
// the goroutine driving the stage, outside their busy-time accounting
// windows, so injected stalls read as idle time (lower utilization) rather
// than compute. Replica is reported as -1; the cluster's per-replica hook
// wrapper rewrites it (see NewCluster). The stall never touches stage state,
// so the weight trajectory is unchanged.
func (st *stageState) stall(backward bool) {
	if st.chaos == nil {
		return
	}
	p := ChaosPoint{Replica: -1, Stage: st.idx, Update: st.updates, Backward: backward}
	if d := st.chaos(p); d > 0 {
		time.Sleep(d)
	}
}

// forwardInfer is the standalone forward-only path: it runs the stage's
// Forward and immediately releases the context — no FIFO push, no gradient,
// no optimizer. Retained activations flow straight back into the stage's
// arena via Stage.ReleaseCtx, so a forward-only pipeline holds no
// per-inflight state beyond the packet itself. The inference engines
// (infer.go) drive all their compute through this.
func forwardInfer(s nn.Stage, p *nn.Packet, ar *tensor.Arena, par *tensor.Parallel) *nn.Packet {
	out, ctx := s.Forward(p, ar, par)
	s.ReleaseCtx(ctx, ar)
	return out
}

// runForward performs the stage's forward transformation for one sample
// under the mitigation's prediction/stashing rules, pushes the sample's
// context onto the stage FIFO, and returns the output packet. It touches
// only stage-local state. With a non-nil arena the input packet is consumed
// and (usually) returned as the output packet.
func (st *stageState) runForward(in *inflight, mit Mitigation, horizon float64, form optim.LWPForm) *nn.Packet {
	var usedWeights, view [][]float64
	if horizon > 0 && len(st.params) > 0 {
		view = make([][]float64, len(st.params))
		for j, p := range st.params {
			view[j] = st.opt.Predict(p, form, horizon)
		}
		if mit.WeightStash {
			usedWeights = view
		}
	} else if mit.WeightStash && len(st.params) > 0 {
		usedWeights = make([][]float64, len(st.params))
		for j, p := range st.params {
			usedWeights[j] = p.Snapshot()
		}
	}
	out, ctx := forwardUnder(st.stage, st.params, view, in.packet, st.arena, st.par)
	st.push(ctx, usedWeights, in.id)
	return out
}

// runBackward consumes the oldest pending context, performs the stage's
// backward transformation (under stashed or predicted weights when the
// mitigation asks for them), applies one weight update at learning rate lr,
// and returns the input gradient. It touches only stage-local state. With a
// non-nil arena the gradient packet is consumed and (usually) returned as
// the output packet.
func (st *stageState) runBackward(dIn *nn.Packet, mit Mitigation, bwdHorizon, lr float64) *nn.Packet {
	c := st.pop()
	var dx *nn.Packet
	switch {
	case c.stash != nil && len(st.params) > 0:
		old := swapIn(st.params, c.stash)
		dx = st.stage.Backward(dIn, c.ctx, st.arena, st.par)
		swapIn(st.params, old)
	case bwdHorizon > 0 && len(st.params) > 0:
		pred := make([][]float64, len(st.params))
		for j, p := range st.params {
			pred[j] = st.opt.Predict(p, optim.LWPVelocity, bwdHorizon)
		}
		old := swapIn(st.params, pred)
		dx = st.stage.Backward(dIn, c.ctx, st.arena, st.par)
		swapIn(st.params, old)
	default:
		dx = st.stage.Backward(dIn, c.ctx, st.arena, st.par)
	}
	gap := st.updates - c.fwdUpdates
	if gap > st.maxObserved {
		st.maxObserved = gap
	}
	if st.obs != nil {
		st.obs.Emit(obs.Event{Kind: obs.KindStaleness, Stage: st.idx, Count: int64(gap)})
	}
	if len(st.params) > 0 {
		if g := mit.GradShrink; g > 0 {
			optim.ShrinkGradients(st.params, g, float64(st.delay))
		}
		if st.reduce != nil {
			// Cross-replica gradient averaging (cluster sync-grad): blocks
			// until every peer replica's same-numbered update at this stage
			// has contributed, then all proceed with the identical mean.
			st.reduce(st.idx, st.params)
		}
		st.opt.LR = lr
		st.opt.Step(st.params)
	}
	st.updates++
	return dx
}

// runLossHead applies the network head to a just-forwarded sample at the
// last stage: it computes the loss and correctness, recycles the logits
// buffer, and reuses the packet to carry the loss gradient into the stage's
// own backward pass.
func (st *stageState) runLossHead(head nn.SoftmaxCrossEntropy, out *nn.Packet, label int) (loss float64, correct bool, grad *nn.Packet) {
	st.labelBuf[0] = label
	dl := st.arena.GetDT(out.X.DType(), out.X.Shape...)
	loss = head.LossInto(dl, out.X, st.labelBuf[:])
	correct = nn.Accuracy(out.X, st.labelBuf[:]) == 1
	st.arena.Put(out.X)
	out.X = dl
	return loss, correct, out
}
