package core

import (
	"repro/internal/nn"
	"repro/internal/optim"
)

// This file holds the engine-independent per-stage compute: the forward and
// backward transformation of one sample at one stage, including the
// mitigation machinery (weight prediction, stashing, spike compensation via
// the optimizer, gradient shrinking). The sequential PBTrainer, the lockstep
// ParallelPBTrainer and the free-running AsyncPBTrainer all drive these same
// routines with different schedules; only the scheduling differs between
// engines, never the math.

// fwdHorizonFor returns the weight-prediction horizon and form used at the
// forward pass of stage i in an s-stage pipeline whose stage-i delay is
// delay. Zero horizon means no prediction.
func fwdHorizonFor(mit Mitigation, s, i, delay int) (float64, optim.LWPForm) {
	if mit.SpecTrain {
		// Vertical sync: predict to the sample's final update time,
		// 2(S−1)−s steps ahead of this forward pass (Appendix C).
		return float64(2*(s-1) - i), optim.LWPVelocity
	}
	if mit.LWP {
		scale := mit.LWPScale
		if scale == 0 {
			scale = 1
		}
		return scale * float64(delay), mit.LWPForm
	}
	return 0, optim.LWPVelocity
}

// bwdHorizonFor returns the prediction horizon used at the backward pass of
// stage i (SpecTrain only).
func bwdHorizonFor(mit Mitigation, i int) float64 {
	if mit.SpecTrain {
		return float64(i)
	}
	return 0
}

// runForward performs the stage's forward transformation for one sample
// under the mitigation's prediction/stashing rules, pushes the sample's
// context onto the stage FIFO, and returns the output packet. It touches
// only stage-local state.
func (st *stageState) runForward(in *inflight, mit Mitigation, horizon float64, form optim.LWPForm) *nn.Packet {
	var usedWeights [][]float64
	if horizon > 0 && len(st.params) > 0 {
		pred := make([][]float64, len(st.params))
		for j, p := range st.params {
			pred[j] = st.opt.Predict(p, form, horizon)
		}
		old := swapIn(st.params, pred)
		out, ctx := st.stage.Forward(in.packet)
		swapIn(st.params, old)
		if mit.WeightStash {
			usedWeights = pred
		}
		st.push(ctx, usedWeights, in.id)
		return out
	}
	if mit.WeightStash && len(st.params) > 0 {
		usedWeights = make([][]float64, len(st.params))
		for j, p := range st.params {
			usedWeights[j] = p.Snapshot()
		}
	}
	out, ctx := st.stage.Forward(in.packet)
	st.push(ctx, usedWeights, in.id)
	return out
}

// runBackward consumes the oldest pending context, performs the stage's
// backward transformation (under stashed or predicted weights when the
// mitigation asks for them), applies one weight update at learning rate lr,
// and returns the input gradient to pass upstream. It touches only
// stage-local state.
func (st *stageState) runBackward(dIn *nn.Packet, mit Mitigation, bwdHorizon, lr float64) *nn.Packet {
	c := st.pop()
	var dx *nn.Packet
	switch {
	case c.stash != nil && len(st.params) > 0:
		old := swapIn(st.params, c.stash)
		dx = st.stage.Backward(dIn, c.ctx)
		swapIn(st.params, old)
	case bwdHorizon > 0 && len(st.params) > 0:
		pred := make([][]float64, len(st.params))
		for j, p := range st.params {
			pred[j] = st.opt.Predict(p, optim.LWPVelocity, bwdHorizon)
		}
		old := swapIn(st.params, pred)
		dx = st.stage.Backward(dIn, c.ctx)
		swapIn(st.params, old)
	default:
		dx = st.stage.Backward(dIn, c.ctx)
	}
	if gap := st.updates - c.fwdUpdates; gap > st.maxObserved {
		st.maxObserved = gap
	}
	if len(st.params) > 0 {
		if g := mit.GradShrink; g > 0 {
			optim.ShrinkGradients(st.params, g, float64(st.delay))
		}
		st.opt.LR = lr
		st.opt.Step(st.params)
	}
	st.updates++
	return dx
}
