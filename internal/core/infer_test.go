package core

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// inferModel couples a Builder-shaped constructor with its input shape so the
// bit-exactness matrix covers both the plain MLP stages and the skip-carrying
// ResNet blocks.
type inferModel struct {
	name  string
	build func(seed int64) *nn.Network
	shape []int // per-sample
}

func inferModels() []inferModel {
	return []inferModel{
		{
			name:  "mlp",
			build: func(seed int64) *nn.Network { return models.DeepMLP(8, 12, 3, 4, seed) },
			shape: []int{8},
		},
		{
			name:  "resnet",
			build: func(seed int64) *nn.Network { return models.ResNet(models.MiniResNet(8, 2, 8, 4, seed)) },
			shape: []int{3, 8, 8},
		},
	}
}

// randBatch builds a [batch, shape...] input from a fixed seed.
func randBatch(batch int, shape []int, seed int64) *tensor.Tensor {
	full := append([]int{batch}, shape...)
	x := tensor.New(full...)
	rng := rand.New(rand.NewSource(seed))
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

// mustInfer runs one request and fails the test on error.
func mustInfer(t *testing.T, e InferEngine, x *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	y, err := e.Infer(context.Background(), x)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	return y
}

// sameBits requires exact float equality — the forward split must be
// bit-identical to the training forward, not merely close.
func sameBits(t *testing.T, got, want *tensor.Tensor, label string) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v, want %v", label, got.Shape, want.Shape)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: logits[%d] = %v, want %v (bit-exactness violated)", label, i, got.Data[i], want.Data[i])
		}
	}
}

// TestInferMatchesTrainingForward is the bit-exactness matrix: both engines,
// pooled and unpooled, several kernel-worker budgets, both model families —
// every combination must reproduce nn.Network.Forward (the training forward)
// exactly.
func TestInferMatchesTrainingForward(t *testing.T) {
	const seed = 41
	for _, m := range inferModels() {
		oracle := m.build(seed)
		x := randBatch(3, m.shape, seed+1)
		want, ctxs := oracle.Forward(x.Clone())
		for i, s := range oracle.Stages {
			s.ReleaseCtx(ctxs[i], nil)
		}
		for _, kind := range InferEngineNames() {
			for _, unpooled := range []bool{false, true} {
				for _, workers := range []int{0, 2, 4} {
					eng, err := NewInferEngine(kind, []*nn.Network{m.build(seed)}, InferConfig{
						Workers:  workers,
						Unpooled: unpooled,
					})
					if err != nil {
						t.Fatalf("%s/%s: %v", m.name, kind, err)
					}
					label := m.name + "/" + kind
					// Two passes so the pooled path also covers warmed arenas.
					sameBits(t, mustInfer(t, eng, x.Clone()), want, label)
					sameBits(t, mustInfer(t, eng, x.Clone()), want, label)
					st := eng.Stats()
					if st.Submitted != 2 || st.Completed != 2 {
						t.Fatalf("%s: stats %+v, want 2 submitted/completed", label, st)
					}
					eng.Close()
				}
			}
		}
	}
}

// TestInferReplicasShareWeights runs a multi-replica pipelined engine and
// checks every replica (round-robin) computes identical logits from the one
// shared weight set.
func TestInferReplicasShareWeights(t *testing.T) {
	m := inferModels()[0]
	const seed = 43
	nets := []*nn.Network{m.build(seed), m.build(seed), m.build(seed)}
	eng, err := NewInferEngine("pipelined", nets, InferConfig{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	oracle := m.build(seed)
	x := randBatch(2, m.shape, seed+1)
	want, _ := oracle.Forward(x.Clone())
	for i := 0; i < 6; i++ { // two full round-robin laps
		sameBits(t, mustInfer(t, eng, x.Clone()), want, "replica lap")
	}
	if st := eng.Stats(); st.Replicas != 3 {
		t.Fatalf("Stats().Replicas = %d, want 3", st.Replicas)
	}
}

// checkpointState builds a snapshot of src's weights shaped like the given
// format version: v1 (weights + single optimizer), v2 (per-stage pipeline
// state), v3 (cluster state mirroring replica 0).
func checkpointState(t *testing.T, src *nn.Network, version int) *checkpoint.State {
	t.Helper()
	st, err := checkpoint.Capture(src, nil, 7, map[string]string{"origin": "infer_test"})
	if err != nil {
		t.Fatal(err)
	}
	st.Version = version
	switch version {
	case 1:
	case 2:
		st.Stages = make([]checkpoint.StageState, src.NumStages())
		for i := range st.Stages {
			st.Stages[i] = checkpoint.StageState{
				Velocities:  map[string][]float64{},
				PrevWeights: map[string][]float64{},
			}
		}
	case 3:
		st.Cluster = &checkpoint.ClusterState{
			Policy:   "avg",
			Interval: 1,
			Replicas: []checkpoint.ReplicaState{{Weights: st.Weights, Step: st.Step}},
		}
	default:
		t.Fatalf("unknown checkpoint version %d", version)
	}
	return st
}

// TestInferCheckpointVersions hot-loads v1, v2 and v3 snapshots through the
// forward-only restore path and checks the served logits are bit-identical to
// a network restored from the same snapshot.
func TestInferCheckpointVersions(t *testing.T) {
	const seed = 47
	for _, m := range inferModels() {
		for version := 1; version <= 3; version++ {
			// The snapshot carries weights from a different seed than the
			// engine's nets, so a failed restore cannot pass by accident.
			src := m.build(seed + int64(version)*100)
			st := checkpointState(t, src, version)
			path := filepath.Join(t.TempDir(), "ckpt.gob")
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := checkpoint.Write(f, st); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			eng, err := NewInferEngine("pipelined", []*nn.Network{m.build(seed)}, InferConfig{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			loader := m.build(seed)
			if _, err := checkpoint.LoadForward(path, loader); err != nil {
				t.Fatalf("%s v%d: LoadForward: %v", m.name, version, err)
			}
			old, err := eng.Swap(CaptureWeights(loader))
			if err != nil {
				t.Fatalf("%s v%d: Swap: %v", m.name, version, err)
			}
			if n := old.InUse(); n != 0 {
				t.Fatalf("%s v%d: displaced set has %d references with nothing in flight", m.name, version, n)
			}

			oracle := m.build(seed)
			if err := checkpoint.RestoreForward(st, oracle); err != nil {
				t.Fatal(err)
			}
			x := randBatch(2, m.shape, seed+2)
			want, _ := oracle.Forward(x.Clone())
			sameBits(t, mustInfer(t, eng, x.Clone()), want, m.name+" ckpt")
			eng.Close()
		}
	}
}

// TestInferSwapRejectsMismatch checks the layout validation: a weight set
// captured from a different architecture must be refused without disturbing
// the published set.
func TestInferSwapRejectsMismatch(t *testing.T) {
	m := inferModels()[0]
	eng, err := NewInferEngine("direct", []*nn.Network{m.build(1)}, InferConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	before := eng.Weights()
	other := models.DeepMLP(8, 16, 2, 4, 1) // different width/depth
	if _, err := eng.Swap(CaptureWeights(other)); err == nil {
		t.Fatal("Swap accepted a weight set from a different architecture")
	}
	if eng.Weights() != before {
		t.Fatal("rejected Swap disturbed the published weight set")
	}
}

// TestInferHotSwapUnderLoad swaps weights while concurrent clients stream
// requests: no request may fail, every response must be bit-identical to one
// of the two published versions (a flight never observes a torn mix), and
// every displaced weight set must drain its references to zero.
func TestInferHotSwapUnderLoad(t *testing.T) {
	m := inferModels()[0]
	const (
		seedA   = 53
		seedB   = 59
		clients = 4
		perC    = 40
		swaps   = 12
	)
	nets := []*nn.Network{m.build(seedA), m.build(seedA)}
	eng, err := NewInferEngine("pipelined", nets, InferConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	x := randBatch(2, m.shape, 61)
	oracleA, oracleB := m.build(seedA), m.build(seedB)
	wantA, _ := oracleA.Forward(x.Clone())
	wantB, _ := oracleB.Forward(x.Clone())
	setB := CaptureWeights(oracleB)
	setA := CaptureWeights(oracleA)

	matches := func(y, want *tensor.Tensor) bool {
		for i := range want.Data {
			if y.Data[i] != want.Data[i] {
				return false
			}
		}
		return true
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	torn := make(chan string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perC; i++ {
				y, err := eng.Infer(context.Background(), x.Clone())
				if err != nil {
					errs <- err
					return
				}
				if !matches(y, wantA) && !matches(y, wantB) {
					torn <- "logits match neither weight version"
					return
				}
			}
		}()
	}

	displaced := make([]*WeightSet, 0, swaps)
	for i := 0; i < swaps; i++ {
		next := setB
		if i%2 == 1 {
			next = setA
		}
		old, err := eng.Swap(next)
		if err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
		displaced = append(displaced, old)
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	close(errs)
	close(torn)
	for err := range errs {
		t.Fatalf("request failed during hot swap: %v", err)
	}
	for msg := range torn {
		t.Fatal(msg)
	}

	// With all clients done, every displaced set's in-flight pins must have
	// drained; only the currently published set keeps its publication
	// reference.
	current := eng.Weights()
	deadline := time.Now().Add(2 * time.Second)
	for _, ws := range displaced {
		if ws == current {
			continue
		}
		for ws.InUse() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("displaced weight set still has %d references after drain", ws.InUse())
			}
			time.Sleep(time.Millisecond)
		}
	}
	if got := current.InUse(); got != 1 {
		t.Fatalf("published set has %d references, want exactly the publication slot", got)
	}
	if st := eng.Stats(); st.Swaps != swaps || st.Completed != clients*perC {
		t.Fatalf("stats %+v, want %d swaps and %d completed", st, swaps, clients*perC)
	}
	eng.Close()
	if got := current.InUse(); got != 0 {
		t.Fatalf("Close left %d references on the published set", got)
	}
}

// TestInferClose checks the lifecycle edges: Close is idempotent, and Infer
// after Close fails with ErrInferClosed on both engines.
func TestInferClose(t *testing.T) {
	m := inferModels()[0]
	for _, kind := range InferEngineNames() {
		eng, err := NewInferEngine(kind, []*nn.Network{m.build(1)}, InferConfig{})
		if err != nil {
			t.Fatal(err)
		}
		mustInfer(t, eng, randBatch(1, m.shape, 2))
		eng.Close()
		eng.Close()
		if _, err := eng.Infer(context.Background(), randBatch(1, m.shape, 2)); err != ErrInferClosed {
			t.Fatalf("%s: Infer after Close = %v, want ErrInferClosed", kind, err)
		}
	}
}

// TestInferRegistry pins the registry surface: both built-ins present, ""
// resolves to pipelined, unknown names fail with the known list.
func TestInferRegistry(t *testing.T) {
	names := InferEngineNames()
	want := []string{"direct", "pipelined"}
	if len(names) < len(want) {
		t.Fatalf("InferEngineNames() = %v, want at least %v", names, want)
	}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("InferEngineNames() = %v, missing %q", names, w)
		}
	}
	m := inferModels()[0]
	eng, err := NewInferEngine("", []*nn.Network{m.build(1)}, InferConfig{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	if _, err := NewInferEngine("bogus", []*nn.Network{m.build(1)}, InferConfig{}); err == nil {
		t.Fatal("NewInferEngine accepted an unknown kind")
	}
}
