package core

import "repro/internal/obs"

// This file is the engines' observability wiring: every engine, when built
// with Config.Obs (or InferConfig.Obs), emits typed events onto the metrics
// bus — per-stage queue depth and staleness, busy-time accounting, lifetime
// completion counters, sync-policy clock — and publishes a KindEngineStats
// summary after each successful Drain, so the bus aggregator carries the
// same numbers Stats() reports and Stats() becomes one consumer of the
// engine's accounting among many.
//
// The topology follows the bus contract: one producer ring per emitting
// goroutine. Stage goroutines emit through their stage's producer
// (stageState.obs), drivers through their own; with no bus configured every
// producer is nil and each emit site is a single pointer check. Events
// never feed back into the training math — a bus-enabled run is
// bit-identical to a bus-disabled one (TestObsDoesNotPerturbTraining).

// obsRingCap sizes the per-producer rings. Deep enough to ride out pump
// scheduling hiccups; overflow is drop-oldest, never blocking.
const obsRingCap = 512

// attachStageObs gives every stage its own producer ring. Each stage is
// driven by exactly one goroutine in every engine, so per-stage producers
// keep the rings single-producer.
func attachStageObs(bus *obs.Bus, stages []*stageState) {
	if bus == nil {
		return
	}
	for _, st := range stages {
		st.obs = bus.Producer(obsRingCap)
	}
}

// driverProducer returns a producer for engine-driver events (nil without a
// bus — the nil producer discards emits).
func driverProducer(bus *obs.Bus) *obs.Producer {
	if bus == nil {
		return nil
	}
	return bus.Producer(obsRingCap)
}

// emitResults publishes one KindSampleDone per completed result. Every
// event carries the engine's lifetime completed count at emit time (the
// aggregator keeps the latest, which is monotone) and the sample's loss.
func emitResults(p *obs.Producer, completed int, rs []*Result) {
	if p == nil || len(rs) == 0 {
		return
	}
	for _, r := range rs {
		p.Emit(obs.Event{Kind: obs.KindSampleDone, Stage: -1, Count: int64(completed), Value: r.Loss})
	}
}

// emitDrainSummary publishes the engine's quiesced accounting — the same
// snapshot Stats() returns — as a KindEngineStats event. Called only with
// the pipeline quiesced (end of a successful Drain).
func emitDrainSummary(p *obs.Producer, s Stats) {
	if p == nil {
		return
	}
	p.Emit(obs.Event{Kind: obs.KindEngineStats, Stage: -1, Value: s.Utilization, Count: int64(s.Completed)})
}
