package core

import (
	"math/rand"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// AssembleBatch stacks (optionally augmented) samples into one tensor. Both
// reference trainers use it so that, given identical orders and RNG streams,
// they consume identical inputs — the precondition for the fill-and-drain
// equivalence test (Fig. 16 validation).
func AssembleBatch(ds *data.Dataset, idx []int, aug data.Augmenter, rng *rand.Rand) (*tensor.Tensor, []int) {
	sz := ds.SampleSize()
	shape := append([]int{len(idx)}, ds.Shape...)
	x := tensor.New(shape...)
	labels := make([]int, len(idx))
	for i, j := range idx {
		sample := ds.Samples[j]
		if aug != nil {
			sample = aug.Apply(sample, rng)
		}
		copy(x.Data[i*sz:(i+1)*sz], sample)
		labels[i] = ds.Labels[j]
	}
	return x, labels
}

// SGDTrainer is the paper's SGDM reference: sequential mini-batch training
// with no pipeline and therefore no delay or inconsistency.
type SGDTrainer struct {
	Net       *nn.Network
	Cfg       Config
	BatchSize int
	opt       *optim.Momentum
	step      int
}

// NewSGDTrainer builds the reference trainer.
func NewSGDTrainer(net *nn.Network, cfg Config, batchSize int) *SGDTrainer {
	o := optim.NewMomentum(cfg.LR, cfg.Momentum)
	o.WeightDecay = cfg.WeightDecay
	return &SGDTrainer{Net: net, Cfg: cfg, BatchSize: batchSize, opt: o}
}

// TrainEpoch performs one epoch of mini-batch SGDM in the order of perm
// (sequential when nil) and returns mean training loss and accuracy.
func (t *SGDTrainer) TrainEpoch(ds *data.Dataset, perm []int, aug data.Augmenter, rng *rand.Rand) (meanLoss, acc float64) {
	var lossMeter metrics.Meter
	correct, count := 0, 0
	n := ds.Len()
	for start := 0; start < n; start += t.BatchSize {
		end := start + t.BatchSize
		if end > n {
			end = n
		}
		idx := make([]int, end-start)
		for i := range idx {
			if perm != nil {
				idx[i] = perm[start+i]
			} else {
				idx[i] = start + i
			}
		}
		x, labels := AssembleBatch(ds, idx, aug, rng)
		t.Net.ZeroGrad()
		loss, c := t.Net.LossAndGrad(x, labels)
		t.opt.LR = t.Cfg.lrAt(t.step)
		t.opt.Step(t.Net.Params())
		t.step++
		lossMeter.Add(loss, float64(len(idx)))
		correct += c
		count += len(idx)
	}
	return lossMeter.Mean(), float64(correct) / float64(count)
}

// FillDrainTrainer performs pipeline-parallel SGD with fill and drain: it
// feeds a batch of N samples one per step through the pipeline, waits for
// all N gradients (2S−1 steps for the last sample), applies a single
// averaged update, and only then admits the next batch. Its weight
// trajectory is mathematically identical to SGDTrainer (verified by tests);
// what differs is the step accounting: each batch costs N+2S−2 pipeline
// steps, of which only a fraction do useful work (Eq. 1).
type FillDrainTrainer struct {
	Net       *nn.Network
	Cfg       Config
	BatchSize int
	opt       *optim.Momentum
	step      int
	// Steps counts pipeline steps including fill/drain bubbles.
	Steps int
	// SamplesDone counts completed samples, for utilization accounting.
	SamplesDone int
}

// NewFillDrainTrainer builds the fill-and-drain trainer.
func NewFillDrainTrainer(net *nn.Network, cfg Config, batchSize int) *FillDrainTrainer {
	o := optim.NewMomentum(cfg.LR, cfg.Momentum)
	o.WeightDecay = cfg.WeightDecay
	return &FillDrainTrainer{Net: net, Cfg: cfg, BatchSize: batchSize, opt: o}
}

// TrainEpoch runs one epoch. Per batch it pushes each sample individually
// through the stage graph (weights frozen — the defining property of fill
// and drain), accumulates the per-sample gradients scaled by 1/N, then
// applies one SGDM update.
func (t *FillDrainTrainer) TrainEpoch(ds *data.Dataset, perm []int, aug data.Augmenter, rng *rand.Rand) (meanLoss, acc float64) {
	var lossMeter metrics.Meter
	correct, count := 0, 0
	n := ds.Len()
	s := t.Net.NumStages()
	for start := 0; start < n; start += t.BatchSize {
		end := start + t.BatchSize
		if end > n {
			end = n
		}
		idx := make([]int, end-start)
		for i := range idx {
			if perm != nil {
				idx[i] = perm[start+i]
			} else {
				idx[i] = start + i
			}
		}
		x, labels := AssembleBatch(ds, idx, aug, rng)
		bs := len(idx)
		t.Net.ZeroGrad()
		sz := ds.SampleSize()
		for i := 0; i < bs; i++ {
			shape := append([]int{1}, ds.Shape...)
			xi := tensor.New(shape...)
			copy(xi.Data, x.Data[i*sz:(i+1)*sz])
			logits, ctxs := t.Net.Forward(xi)
			loss, dl := t.Net.Head.Loss(logits, labels[i:i+1])
			dl.Scale(1 / float64(bs)) // average over the update size
			t.Net.Backward(dl, ctxs)
			lossMeter.Add(loss, 1)
			correct += nn.Accuracy(logits, labels[i:i+1])
			count++
		}
		t.opt.LR = t.Cfg.lrAt(t.step)
		t.opt.Step(t.Net.Params())
		t.step++
		// Pipeline cost: the batch fills and drains an S-stage pipeline.
		t.Steps += bs + 2*s - 2
		t.SamplesDone += bs
	}
	return lossMeter.Mean(), float64(correct) / float64(count)
}

// Utilization returns the achieved fraction of worker capacity, bounded
// above by N/(N+2S) (Eq. 1).
func (t *FillDrainTrainer) Utilization() float64 {
	if t.Steps == 0 {
		return 0
	}
	s := t.Net.NumStages()
	return float64(2*s*t.SamplesDone) / float64(2*s*t.Steps)
}

// UtilizationBound is the paper's Eq. 1 upper bound on fill-and-drain
// utilization for update size n and pipeline depth s.
func UtilizationBound(n, s int) float64 {
	return float64(n) / float64(n+2*s)
}

// Optimizer exposes the trainer's optimizer (for checkpointing).
func (t *SGDTrainer) Optimizer() *optim.Momentum { return t.opt }

// Step returns the trainer's update-step counter — the LR-schedule
// position — for checkpointing.
func (t *SGDTrainer) Step() int { return t.step }

// SetStep restores the schedule position from a checkpoint.
func (t *SGDTrainer) SetStep(step int) { t.step = step }

// Optimizer exposes the trainer's optimizer (for checkpointing).
func (t *FillDrainTrainer) Optimizer() *optim.Momentum { return t.opt }
