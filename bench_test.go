// Package repro's root benchmarks regenerate every table and figure of the
// paper at bench scale, one benchmark per artifact (see DESIGN.md §4 for the
// index). Each benchmark prints its rows/series once, so
//
//	go test -bench=. -benchmem
//
// both times the harness and emits the reproduction artifacts. Larger
// versions: cmd/experiments -scale default|full.
package repro

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sync"
	"testing"

	"repro/internal/exp"
)

// printOnce emits a runner's output the first time each label is seen, so
// repeated benchmark iterations don't flood the log.
var printed sync.Map

func printOnce(label string, buf *bytes.Buffer) {
	if _, loaded := printed.LoadOrStore(label, true); !loaded {
		fmt.Fprintf(os.Stdout, "\n───── %s ─────\n%s", label, buf.String())
	}
}

// run executes an experiment runner b.N times, printing its artifact once.
func run(b *testing.B, label string, fn func(io.Writer, exp.Scale)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		fn(&buf, exp.Bench)
		printOnce(label, &buf)
	}
}

func BenchmarkFig2_Utilization(b *testing.B) {
	run(b, "Fig. 2 / Eq. 1 — pipeline utilization", exp.Fig2Utilization)
}

func BenchmarkFig3_ImpulseResponse(b *testing.B) {
	run(b, "Fig. 3 — impulse responses", exp.Fig3ImpulseResponse)
}

func BenchmarkFig4_RootHeatmaps(b *testing.B) {
	run(b, "Fig. 4 — |r_max| heatmaps", exp.Fig4RootHeatmaps)
}

func BenchmarkFig5_HalflifeVsKappa(b *testing.B) {
	run(b, "Fig. 5 — half-life vs condition number", exp.Fig5HalflifeVsKappa)
}

func BenchmarkFig6_HalflifeVsDelay(b *testing.B) {
	run(b, "Fig. 6 — half-life vs delay", exp.Fig6HalflifeVsDelay)
}

func BenchmarkFig7_HorizonMomentum(b *testing.B) {
	run(b, "Fig. 7 — horizon × momentum", exp.Fig7HorizonMomentum)
}

func BenchmarkFig8_CIFARResNet20(b *testing.B) {
	run(b, "Fig. 8 — CIFAR ResNet20 methods", exp.Fig8CIFARResNet20)
}

func BenchmarkFig9_ImageNetResNet50(b *testing.B) {
	run(b, "Fig. 9 — deep-pipeline ImageNet analogue", exp.Fig9ImageNetResNet50)
}

func BenchmarkFig10_InconsistencyVsDelay(b *testing.B) {
	run(b, "Fig. 10 — inconsistency vs delay", exp.Fig10InconsistencyVsDelay)
}

func BenchmarkFig12_HorizonScaleQuadratic(b *testing.B) {
	run(b, "Fig. 12 — horizon scale (quadratic)", exp.Fig12HorizonScaleQuadratic)
}

func BenchmarkFig13_HorizonScaleNN(b *testing.B) {
	run(b, "Fig. 13 — horizon scale (network)", exp.Fig13HorizonScaleNN)
}

func BenchmarkFig14_MomentumSweep(b *testing.B) {
	run(b, "Fig. 14 — momentum sweep under delay", exp.Fig14MomentumSweep)
}

func BenchmarkFig16_EngineValidation(b *testing.B) {
	run(b, "Fig. 16 — engine validation", exp.Fig16EngineValidation)
}

func BenchmarkFig17_BatchScaling(b *testing.B) {
	run(b, "Fig. 17 — Eq. 9 batch scaling", exp.Fig17BatchScaling)
}

func BenchmarkTable1_CIFARFamilies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		exp.Table1CIFARFamilies(&buf, exp.Bench, false)
		printOnce("Table 1/5 — network families", &buf)
	}
}

func BenchmarkTable2_WeightStashing(b *testing.B) {
	run(b, "Table 2 — weight stashing", exp.Table2WeightStashing)
}

func BenchmarkTable3_SpecTrain(b *testing.B) {
	run(b, "Table 3 — SpecTrain comparison", exp.Table3SpecTrain)
}

func BenchmarkTable4_Overcompensation(b *testing.B) {
	run(b, "Table 4 — overcompensation", exp.Table4Overcompensation)
}

func BenchmarkTable6_LWPForms(b *testing.B) {
	run(b, "Table 6 — LWPv vs LWPw", exp.Table6LWPForms)
}

func BenchmarkAblation_Warmup(b *testing.B) {
	run(b, "Ablation — LR warmup for PB", exp.AblationWarmup)
}

func BenchmarkAblation_GradShrink(b *testing.B) {
	run(b, "Ablation — Gradient Shrinking baseline", exp.AblationGradShrink)
}

func BenchmarkAblation_AdamDelay(b *testing.B) {
	run(b, "Ablation — Adam delay tolerance", exp.AblationAdamDelay)
}

func BenchmarkAblation_ASGD(b *testing.B) {
	run(b, "Ablation — ASGD random delays", exp.AblationASGD)
}

func BenchmarkAblation_NormDelay(b *testing.B) {
	run(b, "Ablation — normalization vs delay tolerance", exp.AblationNormDelay)
}

func BenchmarkAblation_Granularity(b *testing.B) {
	run(b, "Ablation — pipeline granularity", exp.AblationGranularity)
}

func BenchmarkAppendixA_Memory(b *testing.B) {
	run(b, "Appendix A — memory model", exp.AppendixAMemory)
}

// The per-engine streaming benchmarks (BenchmarkEngine_Seq/Lockstep/Async)
// live in internal/core/bench_test.go next to the engines they measure; the
// root package keeps the experiment-level comparison below.
func BenchmarkEngine_Throughput(b *testing.B) {
	run(b, "Engine comparison — seq vs lockstep vs async", exp.EngineThroughput)
}
