// momentum_study: Appendix F in miniature — how momentum interacts with
// gradient delay, using the constant-delay simulator (Appendix G.2).
//
// The learning rate co-varies with momentum so every configuration applies
// the same total contribution per sample (Eq. 9). Expected shape (Fig. 14):
// the unmitigated delayed run prefers small momentum, while spike
// compensation and weight prediction need — and reward — large momentum.
//
// Run with: go run ./examples/momentum_study
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/data"
	"repro/internal/delaysim"
	"repro/internal/models"
	"repro/internal/optim"
)

func main() {
	train, test := data.GaussianBlobs(16, 4, 600, 200, 2.2, 1.3, 7)
	const (
		delay     = 12
		batch     = 8
		etaAnchor = 0.06 // η(m) = etaAnchor·(1−m)
		epochs    = 8
	)
	fmt.Printf("constant delay %d updates, batch %d, consistent weights\n\n", delay, batch)
	fmt.Printf("%-10s %-10s %-10s %-10s %-10s\n", "momentum", "baseline", "SCD", "LWPD", "LWPvD+SCD")
	for _, m := range []float64{0, 0.5, 0.9, 0.99, 0.999} {
		eta := etaAnchor * (1 - m)
		row := []float64{}
		for _, mit := range []struct{ sc, lwp bool }{
			{false, false}, {true, false}, {false, true}, {true, true},
		} {
			cfg := delaysim.Config{Delay: delay, Consistent: true,
				LR: eta, Momentum: m, BatchSize: batch, SC: mit.sc}
			if mit.lwp {
				cfg.LWP = true
				cfg.LWPForm = optim.LWPVelocity
			}
			net := models.DeepMLP(16, 16, 3, 4, 11)
			sim := delaysim.New(net, cfg)
			rng := rand.New(rand.NewSource(13))
			for e := 0; e < epochs; e++ {
				sim.TrainEpoch(train, train.Perm(rng), nil, rng)
			}
			sim.Drain()
			xs, ys := test.Batches(32)
			_, acc := net.Evaluate(xs, ys)
			row = append(row, acc*100)
		}
		fmt.Printf("%-10.3f %-10.1f %-10.1f %-10.1f %-10.1f\n", m, row[0], row[1], row[2], row[3])
	}
}
