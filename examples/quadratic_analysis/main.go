// quadratic_analysis: the paper's Section 3.5 analysis as a library walk.
//
// On a convex quadratic every method reduces to a linear recurrence; its
// convergence rate is the dominant root of a characteristic polynomial
// (Eqs. 28-31). This example computes those rates directly, checks them
// against time-domain simulation, and prints the half-life comparison that
// motivates the combined mitigation.
//
// Run with: go run ./examples/quadratic_analysis
package main

import (
	"fmt"

	"repro/internal/quadratic"
)

func main() {
	m, etaLambda, delay := 0.95, 0.02, 6

	fmt.Printf("scalar quadratic, m=%.2f, ηλ=%.3g, delay=%d updates\n\n", m, etaLambda, delay)
	methods := []quadratic.Method{
		quadratic.GDM,
		quadratic.Nesterov,
		quadratic.SCD(1),
		quadratic.LWPD(1),
		quadratic.LWPD(2),
		quadratic.Combined(1, 1),
	}
	fmt.Printf("%-14s %-12s %-12s %s\n", "method", "|r_max|", "simulated", "half-life")
	for _, meth := range methods {
		r := quadratic.RMax(meth, m, etaLambda, delay)
		sim := quadratic.EstimateRate(quadratic.SimulateMethod(meth, m, etaLambda, delay, 4000))
		fmt.Printf("%-14s %-12.6f %-12.6f %.4g\n", meth.Name(), r, sim, quadratic.Halflife(r))
	}

	// The Fig. 5 sweep at one condition number: optimal achievable rates.
	fmt.Println("\noptimal half-life at κ=1000, delay 1 (optimizing over η and m):")
	ms := quadratic.MomentumGrid(16, 5)
	els := quadratic.LogSpace(1e-8, 4, 200)
	for _, c := range []struct {
		meth quadratic.Method
		d    int
	}{
		{quadratic.GDM, 0},
		{quadratic.GDM, 1},
		{quadratic.SCD(1), 1},
		{quadratic.LWPD(1), 1},
		{quadratic.Combined(1, 1), 1},
	} {
		g := quadratic.ComputeRateGrid(c.meth, c.d, ms, els)
		r, bestM, _ := g.BestRate(1e3)
		fmt.Printf("%-14s D=%d  half-life %8.4g  (best momentum %.5f)\n",
			c.meth.Name(), c.d, quadratic.Halflife(r), bestM)
	}
}
