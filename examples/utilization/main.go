// utilization: the paper's motivation (Figs. 1-2, Eq. 1) visualized.
//
// Simulates the worker schedule of fill-and-drain pipeline SGD against
// pipelined backpropagation and prints utilization numbers for the paper's
// actual pipeline depths (ResNet-20 has 34 stages; ResNet-50 on ImageNet 78).
//
// Run with: go run ./examples/utilization
package main

import (
	"fmt"

	"repro/internal/schedviz"
)

func main() {
	fmt.Println("fill&drain schedule, S=4 stages, batch N=2, two batches:")
	fmt.Print(schedviz.FillDrain(4, 2, 2).String())
	fmt.Println("\npipelined backpropagation, S=4 (steady state = every worker does F and B each step):")
	fmt.Print(schedviz.Pipelined(4, 14).String())

	fmt.Println("\nutilization at the paper's pipeline depths:")
	fmt.Printf("%-8s %-8s %-12s %-12s %-10s\n", "stages", "batch", "fill&drain", "Eq.1 bound", "pipelined")
	for _, r := range schedviz.UtilizationTable([]int{34, 78, 169}, []int{1, 32, 256}) {
		fmt.Printf("%-8d %-8d %-12.3f %-12.3f %-10.3f\n",
			r.Stages, r.Batch, r.FillDrainUtil, r.Bound, r.PipelineUtil)
	}
	fmt.Println("\nPB keeps all workers busy with an update size of one —")
	fmt.Println("the overhead fill&drain pays (everything except the PIPELINED column) is what the paper eliminates.")
}
