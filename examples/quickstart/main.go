// Quickstart: train a small MLP pipeline with pipelined backpropagation
// through the public repro/train façade.
//
// Every hidden layer is its own pipeline stage; the update size is one and
// weights update without draining the pipeline. Spike compensation plus
// linear weight prediction (the paper's best combination) mitigate the
// per-stage gradient delays. The façade applies the paper's Eq. 9 scaling
// from the reference batch-32 hyperparameters to update size one.
//
// Run with: go run ./examples/quickstart [-engine async] [-epochs 40]
package main

import (
	"context"
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/train"
)

func main() {
	engine := flag.String("engine", "seq", "PB engine: seq|lockstep|async|async-lockstep")
	epochs := flag.Int("epochs", 40, "training epochs")
	samples := flag.Int("samples", 512, "training samples")
	flag.Parse()

	// A non-linearly-separable task: two interleaved spirals.
	trainSet := data.TwoSpirals(*samples, 0.02, 1)
	testSet := data.TwoSpirals(256, 0.02, 2)

	// A 5-stage pipeline: 4 hidden Dense+LayerNorm+ReLU stages + classifier.
	builder := func(seed int64) *nn.Network { return models.DeepMLP(2, 32, 4, 2, seed) }
	stages := builder(3).NumStages()
	fmt.Printf("pipeline stages: %d, per-stage delays: %v, engine: %s\n",
		stages, core.StageDelays(stages), *engine)

	tr := train.New(builder,
		train.WithEngine(*engine),
		train.WithSeed(3),
		train.WithMitigations(core.LWPvDSCD), // combined mitigation: LWPv + SC
		train.WithRefHyper(train.RefHyper{Eta: 0.1, Momentum: 0.9, RefBatch: 32}),
		train.OnEpochEnd(func(e train.EpochEvent) {
			if e.Epoch%5 == 0 || e.Epoch == 1 {
				fmt.Printf("epoch %2d  train loss %.3f  train acc %5.1f%%  val acc %5.1f%%\n",
					e.Epoch, e.TrainLoss, e.TrainAcc*100, e.ValAcc*100)
			}
		}))
	defer tr.Close()

	report, err := tr.Fit(context.Background(), trainSet, testSet, *epochs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("final val acc %.1f%% after %d samples\n", report.ValAcc*100, report.Samples)
	fmt.Printf("pipeline utilization: %.3f (fill&drain at N=1 would be bounded by %.3f)\n",
		report.Utilization, core.UtilizationBound(1, report.Stages))
}
