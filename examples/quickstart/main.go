// Quickstart: train a small MLP pipeline with pipelined backpropagation.
//
// Every hidden layer is its own pipeline stage; the update size is one and
// weights update without draining the pipeline. Spike compensation plus
// linear weight prediction (the paper's best combination) mitigate the
// per-stage gradient delays.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/models"
)

func main() {
	// A non-linearly-separable task: two interleaved spirals.
	train := data.TwoSpirals(512, 0.02, 1)
	test := data.TwoSpirals(256, 0.02, 2)

	// A 5-stage pipeline: 4 hidden Dense+LayerNorm+ReLU stages + classifier.
	net := models.DeepMLP(2, 32, 4, 2, 3)
	fmt.Printf("pipeline stages: %d, per-stage delays: %v\n",
		net.NumStages(), core.StageDelays(net.NumStages()))

	// Reference hyperparameters tuned for batch 32, scaled to update size 1
	// with Eq. 9 — the paper's no-tuning protocol.
	cfg := core.ScaledConfig(0.1, 0.9, 32, 1)
	cfg.Mitigation = core.LWPvDSCD // combined mitigation: LWPv + SC

	trainer := core.NewPBTrainer(net, cfg)
	rng := rand.New(rand.NewSource(4))
	const epochs = 40
	for epoch := 1; epoch <= epochs; epoch++ {
		loss, acc := trainer.TrainEpoch(train, train.Perm(rng), nil, rng)
		if epoch%5 == 0 || epoch == 1 {
			xs, ys := test.Batches(64)
			_, valAcc := net.Evaluate(xs, ys)
			fmt.Printf("epoch %2d  train loss %.3f  train acc %5.1f%%  val acc %5.1f%%\n",
				epoch, loss, acc*100, valAcc*100)
		}
	}
	fmt.Printf("pipeline utilization: %.3f (fill&drain at N=1 would be bounded by %.3f)\n",
		trainer.Utilization(epochs*train.Len()), core.UtilizationBound(1, net.NumStages()))
}
