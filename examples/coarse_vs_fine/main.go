// coarse_vs_fine: the pipeline-granularity trade-off.
//
// The paper takes pipeline granularity to its fine-grained extreme (every
// layer a stage) to maximize worker specialization, accepting the largest
// gradient delays. This example uses the load-balancing partitioner
// (internal/partition, after PipeDream's software balancing that the
// paper's Appendix A cites) to regroup a ResNet-20 pipeline into fewer,
// cost-balanced stages and shows the other side of the trade: shorter
// delays make plain PB accurate again — at one worker it *is* batch-size-1
// SGDM.
//
// Run with: go run ./examples/coarse_vs_fine
package main

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/exp"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/partition"
)

func main() {
	const size = 12
	cfg := data.CIFAR10Like(size, 600, 200, 21)
	train, test := data.GenerateImages(cfg)
	inShape := []int{1, 3, size, size}

	fmt.Printf("%-8s %-8s %-10s %-9s %s\n", "workers", "stages", "max delay", "balance", "plain-PB val acc")
	for _, workers := range []int{31, 8, 4, 1} {
		var lastRatio float64
		build := func(seed int64) *nn.Network {
			net := models.ResNet(models.MiniResNet(20, 4, size, 10, seed))
			coarse, ratio := partition.Balance(net, inShape, workers)
			lastRatio = ratio
			return coarse
		}
		r := exp.RunMethod(build, train, test, exp.PB, exp.DefaultRef, 6, nil, 1)
		fmt.Printf("%-8d %-8d %-10d %-9.2f %.1f%%\n",
			workers, r.Stages, 2*(r.Stages-1), lastRatio, r.FinalValAcc*100)
	}
}
