// cifar_pipeline: the paper's headline experiment in miniature.
//
// A pre-activation ResNet-20 with GroupNorm (31 pipeline stages: conv+GN+
// ReLU fused per stage, residual sum nodes as stages) trains on a synthetic
// CIFAR-10 stand-in three ways:
//
//  1. SGDM        — the mini-batch reference (no pipeline, no delay),
//  2. PB          — fine-grained pipelined backpropagation, update size 1,
//  3. PB+LWPvD+SCD — PB with the paper's combined mitigation.
//
// The expected shape (Fig. 8 / Table 1): PB alone loses accuracy to stale
// gradients; the combined mitigation recovers most of it with no tuning.
//
// The -engine flag selects the PB runtime: the sequential reference (seq),
// the barrier-parallel engine (lockstep), or the free-running asynchronous
// engine (async) in which every stage races ahead over bounded queues while
// staleness stays capped at D_s = 2(S−1−s) per stage.
//
// Run with: go run ./examples/cifar_pipeline [-engine async]
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/exp"
	"repro/internal/models"
	"repro/internal/nn"
)

func main() {
	engine := flag.String("engine", "seq", "PB engine: "+strings.Join(core.EngineNames(), "|"))
	flag.Parse()
	if !slices.Contains(core.EngineNames(), *engine) {
		fmt.Fprintf(os.Stderr, "unknown engine %q; options: %s\n", *engine, strings.Join(core.EngineNames(), " "))
		os.Exit(2)
	}

	cfg := data.CIFAR10Like(12, 600, 200, 42)
	train, test := data.GenerateImages(cfg)
	build := func(seed int64) *nn.Network {
		return models.ResNet(models.MiniResNet(20, 4, 12, 10, seed))
	}
	fmt.Printf("ResNet-20 mini: %d pipeline stages (paper's GProp: 34), max delay %d updates, engine %s\n\n",
		build(1).NumStages(), 2*(build(1).NumStages()-1), *engine)

	methods := []exp.MethodSpec{
		exp.SGDMRef,
		{Name: "PB", Engine: *engine},
		{Name: "PB+LWPvD+SCD", Mit: exp.Table1Methods[2].Mit, Engine: *engine},
	}
	for _, m := range methods {
		r := exp.RunMethod(build, train, test, m, exp.DefaultRef, 8, nil, 1)
		fmt.Printf("%-14s final val acc %5.1f%%  (epoch curve:", m.Name, r.FinalValAcc*100)
		for _, a := range r.Curve {
			fmt.Printf(" %.0f", a*100)
		}
		fmt.Println(")")
	}
}
