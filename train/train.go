// Package train is the public façade over the repo's pipelined-
// backpropagation runtimes: a context-aware Trainer configured with
// functional options, streaming progress through callbacks, with periodic
// checkpointing and resume.
//
//	tr := train.New(builder,
//		train.WithEngine("async"),
//		train.WithMitigations(core.LWPvDSCD),
//		train.OnEpochEnd(func(e train.EpochEvent) { fmt.Println(e.Epoch, e.ValAcc) }))
//	defer tr.Close()
//	report, err := tr.Fit(ctx, trainSet, testSet, epochs)
//
// Fit drives core.RunEpoch — the single training loop every consumer of the
// engines shares — with the paper's hyperparameter protocol: reference
// hyperparameters (RefHyper) are Eq. 9-scaled to update size one for the
// pipelined engines, and a He-style MultiStep decay fires at 50% and 75% of
// the planned updates unless WithSchedule overrides it. The deterministic
// engines ("seq", "lockstep", "async-lockstep") produce bit-identical
// weight trajectories through this façade for a given seed.
//
// Cancelling ctx mid-epoch stops the run at the next engine interaction,
// closes the engine (unwinding every stage goroutine — no leaks), and
// returns ctx's error with the partial Report.
package train

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/obs/lineage"
	"repro/internal/partition"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// Builder constructs a fresh network for a seed. The Trainer invokes it
// once, on the first Fit (or Resume-into-built), with the WithSeed value.
type Builder func(seed int64) *nn.Network

// Trainer owns one training run: a network built from its Builder, the
// selected engine, and the RNG stream driving data order and augmentation.
// It is not safe for concurrent use. Close releases the engine's
// goroutines; a Trainer whose Fit was cancelled is closed automatically.
type Trainer struct {
	build Builder
	o     options

	net   *nn.Network
	eng   core.Engine
	sgd   *core.SGDTrainer
	rng   *rand.Rand
	built bool

	// resume holds a snapshot loaded before the first Fit, applied once the
	// engine exists.
	resume *checkpoint.State

	// obsDrv is the Trainer's own bus producer (KindEpoch events); nil
	// without WithObserver. Emits happen only on the Fit goroutine, keeping
	// the ring single-producer.
	obsDrv *obs.Producer

	// lineage state (WithLineage): the in-memory graph, its config node ID,
	// and the checkpoint node IDs minted so far (see train/lineage.go).
	lin       *lineage.Graph
	linConfig string
	linCkpts  []string

	closed    bool
	epochs    int // lifetime epochs completed
	completed int // lifetime samples completed
}

// New builds a Trainer around a network Builder. Options validate lazily:
// invalid values are reported by the first Fit or Resume call.
func New(build Builder, opts ...Option) *Trainer {
	t := &Trainer{build: build, o: defaultOptions()}
	for _, opt := range opts {
		if opt != nil {
			opt(&t.o)
		}
	}
	return t
}

// Network exposes the trained network (nil before the first Fit or Resume
// builds it). Callers may evaluate it; mutating weights mid-Fit is
// undefined.
func (t *Trainer) Network() *nn.Network { return t.net }

// Close releases the engine's goroutines, abandoning any in-flight
// samples. Idempotent; the Trainer is unusable afterwards.
func (t *Trainer) Close() {
	if t.closed {
		return
	}
	t.closed = true
	if t.eng != nil {
		t.eng.Close()
	}
}

// precheck validates the call-independent state shared by Fit and Resume.
func (t *Trainer) precheck(ctx context.Context) error {
	if t.closed {
		return errors.New("train: Trainer is closed")
	}
	if len(t.o.errs) > 0 {
		return errors.Join(t.o.errs...)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}

// scheduleOr returns the configured schedule, or the paper's MultiStep
// default over the planned update count. A zero-epoch first Fit plans no
// updates — milestones at {0, 0} would permanently decay the rate 100×
// before the first real update — so that case falls back to a constant
// rate; callers mixing a zero-epoch evaluation Fit with later training
// should pass WithSchedule explicitly.
func (t *Trainer) scheduleOr(base float64, totalUpdates int) sched.Schedule {
	if t.o.schedule != nil {
		return t.o.schedule
	}
	if totalUpdates <= 0 {
		return sched.Constant{Base: base}
	}
	return sched.MultiStep{Base: base, Milestones: []int{totalUpdates / 2, totalUpdates * 3 / 4}, Gamma: 0.1}
}

// ensureBuilt constructs the network, RNG stream and trainer/engine on the
// first Fit. The default LR schedule is sized from this Fit's dataset and
// epoch count; later Fit calls continue on the same engine and schedule.
func (t *Trainer) ensureBuilt(trainSet *data.Dataset, epochs int) error {
	if t.built {
		return nil
	}
	if t.build == nil {
		return errors.New("train: nil Builder")
	}
	if t.o.sgdm && t.o.replicas > 0 {
		return errors.New("train: WithReplicas replicates the PB pipeline; the SGDM reference has none (drop WithReplicas or the pipeline options)")
	}
	if t.o.dtype == tensor.F32 {
		// f32 training rides the plain pipelined engines. The f64-only
		// combinations are exactly the ones that exchange or predict weights
		// through float64 master buffers; refuse them here rather than let
		// the optim/nn guards panic mid-epoch.
		switch {
		case t.o.sgdm:
			return errors.New("train: WithDType(f32) needs a pipelined engine; the SGDM reference is the f64 oracle")
		case t.o.replicas > 0:
			return errors.New("train: WithDType(f32) excludes WithReplicas (replica weight sync averages f64 buffers)")
		case t.o.mit.LWP || t.o.mit.SpecTrain || t.o.mit.WeightStash:
			return errors.New("train: WithDType(f32) excludes weight prediction and stashing (f64-only master weights); SC and GradShrink remain available")
		}
	}
	buildOne := func() (*nn.Network, error) {
		net := t.build(t.o.seed)
		if net == nil {
			return nil, errors.New("train: Builder returned a nil network")
		}
		if t.o.workers > 0 {
			if t.o.workers > net.NumStages() {
				return nil, fmt.Errorf("train: %d workers exceed the pipeline's %d fine-grained stages", t.o.workers, net.NumStages())
			}
			inShape := append([]int{1}, trainSet.Shape...)
			net, _ = partition.Balance(net, inShape, t.o.workers)
		}
		// Networks are always built (and partition-balanced) at f64 — the
		// initializers draw f64 streams — then converted, so an f32 model is
		// the deterministic float32 cast of its f64 twin (DESIGN.md §15).
		if t.o.dtype == tensor.F32 {
			net.ConvertTo(tensor.F32)
		}
		return net, nil
	}
	net, err := buildOne()
	if err != nil {
		return err
	}
	t.rng = rand.New(rand.NewSource(t.o.seed * 7919))
	n := trainSet.Len()
	ref := t.o.ref
	switch {
	case t.o.sgdm:
		updatesPerEpoch := (n + ref.RefBatch - 1) / ref.RefBatch
		cfg := core.Config{
			LR: ref.Eta, Momentum: ref.Momentum, WeightDecay: ref.WeightDecay,
			Schedule: t.scheduleOr(ref.Eta, updatesPerEpoch*epochs),
		}
		t.sgd = core.NewSGDTrainer(net, cfg, ref.RefBatch)
	case t.o.replicas > 0:
		// Replicated pipelines: R weight-identical networks (clone with
		// shared init — the Builder runs once per replica and every copy is
		// forced onto replica 0's exact initial weights) behind the cluster
		// engine. Replica 0 is the canonical network evaluation sees.
		nets := make([]*nn.Network, t.o.replicas)
		nets[0] = net
		snap := net.SnapshotWeights()
		for i := 1; i < t.o.replicas; i++ {
			ni, err := buildOne()
			if err != nil {
				return err
			}
			ni.RestoreWeights(snap)
			nets[i] = ni
		}
		// sync-grad averages R gradients into every stage update — effective
		// update size R — so the Eq. 9 scaling targets R; the other policies
		// keep each replica at update size one.
		updateSize := 1
		if t.o.policy != nil && t.o.policy.GradReduce() {
			updateSize = t.o.replicas
		}
		cfg := core.ScaledConfig(ref.Eta, ref.Momentum, ref.RefBatch, updateSize)
		cfg.WeightDecay = ref.WeightDecay
		cfg.Mitigation = t.o.mit
		cfg.Unpooled = t.o.unpooled
		cfg.Workers = t.o.kernelWorkers
		cfg.Obs = t.o.obsBus
		cfg.StageDelay = t.o.stageDelay
		cfg.AdmitBound = t.o.admitBound
		// Each replica sees ~1/R of the stream, so the default MultiStep
		// decay is sized in per-replica updates.
		perReplica := (n + t.o.replicas - 1) / t.o.replicas
		cfg.Schedule = t.scheduleOr(cfg.LR, perReplica*epochs)
		eng, err := core.NewCluster(nets, cfg, core.ClusterConfig{
			Replicas: t.o.replicas, Engine: t.o.engine, Policy: t.o.policy,
		})
		if err != nil {
			return err
		}
		t.eng = eng
	default:
		cfg := core.ScaledConfig(ref.Eta, ref.Momentum, ref.RefBatch, 1)
		cfg.WeightDecay = ref.WeightDecay
		cfg.Mitigation = t.o.mit
		cfg.Unpooled = t.o.unpooled
		cfg.Workers = t.o.kernelWorkers
		cfg.Obs = t.o.obsBus
		cfg.StageDelay = t.o.stageDelay
		cfg.AdmitBound = t.o.admitBound
		cfg.Schedule = t.scheduleOr(cfg.LR, n*epochs)
		eng, err := core.NewEngine(t.o.engine, net, cfg)
		if err != nil {
			return err
		}
		t.eng = eng
	}
	t.net = net
	t.built = true
	if t.o.obsBus != nil {
		// Shallow ring: the Trainer emits only one KindEpoch per epoch.
		t.obsDrv = t.o.obsBus.Producer(64)
	}
	t.initLineage()
	if t.resume != nil {
		st := t.resume
		t.resume = nil
		if err := t.applyState(st); err != nil {
			return err
		}
	}
	return nil
}

// applyState restores a snapshot into the built trainer.
func (t *Trainer) applyState(st *checkpoint.State) error {
	if t.sgd != nil {
		if len(st.Stages) > 0 {
			// A pipeline snapshot keeps its optimizer state per stage and
			// its step counter in sample units; loading it into the
			// batch-stepped SGDM trainer would "succeed" with zeroed
			// momentum and a wrong schedule position. Refuse loudly.
			return fmt.Errorf("train: snapshot holds per-stage pipeline state (engine %q); this Trainer is SGDM — resume it with a pipeline engine instead", st.Meta["engine"])
		}
		if err := checkpoint.Restore(st, t.net, t.sgd.Optimizer()); err != nil {
			return err
		}
		t.sgd.SetStep(st.Step)
		return nil
	}
	if cl, ok := t.eng.(*core.Cluster); ok {
		// RestoreCluster validates the snapshot's replica count, policy and
		// per-replica state and rejects single-pipeline snapshots loudly.
		return checkpoint.RestoreCluster(st, cl)
	}
	if st.Cluster != nil {
		return fmt.Errorf("train: snapshot holds %d-replica cluster state (policy %q); resume it with WithReplicas",
			len(st.Cluster.Replicas), st.Cluster.Policy)
	}
	pt, ok := t.eng.(checkpoint.PipelineTrainer)
	if !ok {
		return fmt.Errorf("train: engine %q does not support checkpoint restore", t.o.engine)
	}
	return checkpoint.RestorePipeline(st, t.net, pt)
}

// Resume loads a snapshot saved by WithCheckpointEvery (or the checkpoint
// package) into the Trainer: weights, per-stage optimizer state and the
// LR-schedule position. Called before the first Fit it defers the restore
// until the engine exists; called between Fits it restores immediately
// (the pipeline is drained between epochs, as the checkpoint contract
// requires). The data-order RNG is not part of a snapshot: a resumed run
// replays the permutation stream from its seed.
func (t *Trainer) Resume(ctx context.Context, path string) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := t.precheck(ctx); err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("train: resume: %w", err)
	}
	defer f.Close()
	st, err := checkpoint.Read(f)
	if err != nil {
		return fmt.Errorf("train: resume %s: %w", path, err)
	}
	if !t.built {
		t.resume = st
		return nil
	}
	return t.applyState(st)
}

// Checkpoint writes a snapshot of the current training state (weights,
// optimizer state, LR-schedule position) to path, exactly like the
// periodic WithCheckpointEvery saves. The Trainer must have been built by
// a Fit or Resume, and the pipeline is quiesced between Fit calls — call
// it there.
func (t *Trainer) Checkpoint(path string) error {
	if t.closed {
		return errors.New("train: Trainer is closed")
	}
	if !t.built {
		return errors.New("train: nothing to checkpoint before the first Fit or Resume")
	}
	meta := map[string]string{"engine": t.o.engine, "epoch": fmt.Sprint(t.epochs)}
	if t.sgd != nil {
		meta["engine"] = "sgdm"
		return checkpoint.Save(path, t.net, t.sgd.Optimizer(), t.sgd.Step(), meta)
	}
	if cl, ok := t.eng.(*core.Cluster); ok {
		meta["replicas"] = fmt.Sprint(cl.Replicas())
		meta["sync"] = cl.PolicyName()
		return checkpoint.SaveCluster(path, cl, meta)
	}
	pt, ok := t.eng.(checkpoint.PipelineTrainer)
	if !ok {
		return fmt.Errorf("train: engine %q does not support checkpointing", t.o.engine)
	}
	return checkpoint.SavePipeline(path, t.net, pt, meta)
}

// Fit trains for the given number of epochs, evaluating on testSet after
// each (pass nil to skip evaluation), and returns a Report of what this
// call completed. The first Fit builds the network and engine; later calls
// continue training the same state. On ctx cancellation Fit closes the
// Trainer — every engine goroutine unwinds — and returns ctx's error
// alongside the partial Report.
func (t *Trainer) Fit(ctx context.Context, trainSet, testSet *data.Dataset, epochs int) (Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var rep Report
	if err := t.precheck(ctx); err != nil {
		return rep, err
	}
	if trainSet == nil || trainSet.Len() == 0 {
		return rep, errors.New("train: empty training set")
	}
	if epochs < 0 {
		return rep, fmt.Errorf("train: %d epochs, want ≥ 0", epochs)
	}
	if err := t.ensureBuilt(trainSet, epochs); err != nil {
		return rep, err
	}
	rep.Stages = t.net.NumStages()

	eval := func() (loss, acc float64, ok bool) {
		if testSet == nil || testSet.Len() == 0 {
			return 0, 0, false
		}
		xs, ys := testSet.Batches(t.o.evalBatch)
		loss, acc = t.net.Evaluate(xs, ys)
		return loss, acc, true
	}

	for e := 0; e < epochs; e++ {
		if err := ctx.Err(); err != nil {
			t.Close()
			return rep, err
		}
		epoch := t.epochs + 1
		sink := func(r *core.Result) {
			t.completed++
			rep.Samples++
			for _, fn := range t.o.onSample {
				fn(SampleEvent{Epoch: epoch, ID: r.ID, Loss: r.Loss, Correct: r.Correct, Completed: t.completed})
			}
		}
		perm := trainSet.Perm(t.rng)
		start := time.Now() //lint:allow(determinism) epoch wall-clock for Report.TrainDuration; never feeds the training math
		var trainLoss, trainAcc float64
		var err error
		if t.sgd != nil {
			trainLoss, trainAcc = t.sgd.TrainEpoch(trainSet, perm, t.o.aug, t.rng)
		} else {
			trainLoss, trainAcc, err = core.RunEpoch(ctx, t.eng, trainSet, perm, t.o.aug, t.rng, sink)
		}
		elapsed := time.Since(start) //lint:allow(determinism) epoch timing for Report.TrainDuration only
		rep.TrainDuration += elapsed
		if err != nil {
			// Cancelled mid-epoch: abandon the in-flight samples and unwind
			// the engine goroutines before handing control back.
			t.Close()
			return rep, err
		}
		if t.sgd != nil {
			t.completed += trainSet.Len()
			rep.Samples += trainSet.Len()
		}
		t.epochs++
		rep.Epochs++
		rep.TrainLoss, rep.TrainAcc = trainLoss, trainAcc
		if t.obsDrv != nil {
			t.obsDrv.Emit(obs.Event{Kind: obs.KindEpoch, Stage: -1, Count: int64(t.epochs), Value: trainLoss})
		}

		valLoss, valAcc, hasVal := eval()
		if hasVal {
			rep.Curve = append(rep.Curve, valAcc)
			rep.ValLoss, rep.ValAcc = valLoss, valAcc
		}
		if len(t.o.onEpoch) > 0 {
			ev := EpochEvent{
				Epoch:     epoch,
				TrainLoss: trainLoss, TrainAcc: trainAcc,
				ValLoss: valLoss, ValAcc: valAcc, HasVal: hasVal,
				Elapsed: elapsed,
			}
			if t.eng != nil {
				ev.Stats = t.eng.Stats()
			}
			for _, fn := range t.o.onEpoch {
				fn(ev)
			}
		}
		if t.o.ckptEvery > 0 && t.epochs%t.o.ckptEvery == 0 {
			if err := t.Checkpoint(t.o.ckptPath); err != nil {
				return rep, err
			}
			if err := t.recordLineageCheckpoint(t.o.ckptPath); err != nil {
				return rep, err
			}
			for _, fn := range t.o.onCkpt {
				fn(CheckpointEvent{Epoch: t.epochs, Path: t.o.ckptPath})
			}
		}
	}
	if epochs == 0 {
		// A zero-epoch Fit still reports where the (possibly resumed)
		// network stands.
		if valLoss, valAcc, hasVal := eval(); hasVal {
			rep.ValLoss, rep.ValAcc = valLoss, valAcc
		}
	}
	if t.eng != nil {
		st := t.eng.Stats()
		rep.Utilization = st.Utilization
		rep.MaxStaleness = st.MaxObservedDelay
		rep.ObservedDelays = append([]int(nil), t.eng.ObservedDelays()...)
		rep.Replicas = st.Replicas
		rep.Syncs = st.Syncs
	}
	if err := t.recordLineageRun(rep); err != nil {
		return rep, err
	}
	return rep, nil
}
