package train

import (
	"context"
	"errors"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// This file is the serving facade: the same Builder the training facade
// consumes, wired to a forward-only inference engine (core.InferEngine)
// instead of a trainer. A Server never runs backward passes; checkpoints are
// restored read-only into a private loader network and published to the
// engine as immutable weight sets, so a hot swap never disturbs in-flight
// requests.

// ServerConfig configures NewServer.
type ServerConfig struct {
	// Engine selects the inference engine kind from the registry:
	// "pipelined" (default, goroutine per stage) or "direct" (serialized
	// in-caller forward, the bit-exactness oracle).
	Engine string
	// Replicas is the number of pipeline replicas sharing the weight set
	// (default 1).
	Replicas int
	// KernelWorkers is the total kernel-worker budget, split across replicas
	// and stages like the training engines.
	KernelWorkers int
	// Unpooled disables arena pooling (reference mode).
	Unpooled bool
	// Seed is passed to the Builder (default 1). The built weights serve as
	// the initial weight set until a checkpoint is loaded.
	Seed int64
	// Checkpoint, when non-empty, is loaded (any version v1–v3) before the
	// server accepts requests.
	Checkpoint string
	// Obs, when non-nil, attaches the metrics bus to the inference engine:
	// per-stage queue depths and lifetime completion counters stream onto it
	// (see train.WithObserver for the training-side equivalent). The caller
	// owns the bus.
	Obs *obs.Bus
	// DType selects the serving dtype: tensor.F64 (zero value, the bit-exact
	// oracle) or tensor.F32 (SIMD kernel path). Checkpoints stay canonical
	// f64 on disk; an f32 server narrows each value once at load
	// (Param.SetData), so the published weights are the deterministic
	// float32 cast of the snapshot. Inputs of either dtype are accepted and
	// converted at admission; logits come back at the serving dtype.
	DType tensor.DType
}

// Server is the forward-only serving facade over a Builder.
type Server struct {
	eng core.InferEngine
	// loader is a private network used only to decode checkpoints into; it
	// is never installed into the engine, so restoring into it cannot
	// corrupt the weight views live requests are reading.
	loader *nn.Network
	mu     sync.Mutex // serializes checkpoint loads/swaps
}

// NewServer builds the replica networks (weight-identical, like the training
// cluster) and the inference engine behind them.
func NewServer(build Builder, cfg ServerConfig) (*Server, error) {
	if build == nil {
		return nil, errors.New("train: nil Builder")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	buildOne := func() (*nn.Network, error) {
		net := build(seed)
		if net == nil {
			return nil, errors.New("train: Builder returned a nil network")
		}
		return net, nil
	}
	if cfg.DType != tensor.F64 && cfg.DType != tensor.F32 {
		return nil, errors.New("train: ServerConfig.DType must be tensor.F64 or tensor.F32")
	}
	loader, err := buildOne()
	if err != nil {
		return nil, err
	}
	snap := loader.SnapshotWeights()
	nets := make([]*nn.Network, cfg.Replicas)
	for i := range nets {
		ni, err := buildOne()
		if err != nil {
			return nil, err
		}
		ni.RestoreWeights(snap)
		ni.ConvertTo(cfg.DType)
		nets[i] = ni
	}
	// The loader holds the engine dtype too: checkpoint restores narrow each
	// f64 value through Param.SetData, so CaptureWeights publishes f32 sets
	// directly.
	loader.ConvertTo(cfg.DType)
	eng, err := core.NewInferEngine(cfg.Engine, nets, core.InferConfig{
		Workers:  cfg.KernelWorkers,
		Unpooled: cfg.Unpooled,
		Obs:      cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{eng: eng, loader: loader}
	if cfg.Checkpoint != "" {
		if _, err := s.LoadCheckpoint(cfg.Checkpoint); err != nil {
			eng.Close()
			return nil, err
		}
	}
	return s, nil
}

// Infer runs one input tensor (a sample or a coalesced micro-batch
// [N, ...]) through the pipeline and returns the caller-owned logits.
func (s *Server) Infer(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	return s.eng.Infer(ctx, x)
}

// LoadCheckpoint hot-swaps the published weights to the snapshot at path
// (any version v1–v3) without dropping in-flight requests. It returns the
// displaced weight set, whose InUse count drains to zero once every request
// admitted under it has completed.
func (s *Server) LoadCheckpoint(path string) (*core.WeightSet, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := checkpoint.LoadForward(path, s.loader); err != nil {
		return nil, err
	}
	return s.eng.Swap(core.CaptureWeights(s.loader))
}

// SwapState hot-swaps to an in-memory snapshot — the same publication
// protocol as LoadCheckpoint without the file round-trip (used by tests and
// co-located trainers).
func (s *Server) SwapState(st *checkpoint.State) (*core.WeightSet, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := checkpoint.RestoreForward(st, s.loader); err != nil {
		return nil, err
	}
	return s.eng.Swap(core.CaptureWeights(s.loader))
}

// Stats returns the engine's counter snapshot.
func (s *Server) Stats() core.InferStats { return s.eng.Stats() }

// Weights returns the currently published weight set (see
// core.InferEngine.Weights).
func (s *Server) Weights() *core.WeightSet { return s.eng.Weights() }

// Close shuts the engine down. Callers that need a zero-drop shutdown must
// drain their admission path first (internal/serve does).
func (s *Server) Close() { s.eng.Close() }
