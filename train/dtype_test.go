package train_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/tensor"
	"repro/train"
)

// TestWithDTypeF32Trains runs the façade at f32 end to end: the run must
// converge on the blob task (the tolerance gate — f32 rounding must not
// break learning), report an f32 network, and be bit-reproducible: two
// identical f32 Fits land on identical weights, the same determinism
// contract the f64 engines carry (DESIGN.md §15).
func TestWithDTypeF32Trains(t *testing.T) {
	trainSet, testSet, build := blobTask()
	fit := func() (train.Report, [][]float64) {
		tr := train.New(build,
			train.WithDType(tensor.F32),
			train.WithRefHyper(train.RefHyper{Eta: 0.1, Momentum: 0.9, RefBatch: 16}),
			train.WithSeed(7))
		defer tr.Close()
		rep, err := tr.Fit(context.Background(), trainSet, testSet, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got := tr.Network().DType(); got != tensor.F32 {
			t.Fatalf("trained network dtype %s, want f32", got)
		}
		return rep, tr.Network().SnapshotWeights()
	}
	rep1, w1 := fit()
	rep2, w2 := fit()
	if !sameWeights(w1, w2) {
		t.Fatal("two identical f32 runs diverged (f32 determinism violated)")
	}
	if rep1.ValAcc != rep2.ValAcc {
		t.Fatalf("f32 accuracy not reproducible: %v vs %v", rep1.ValAcc, rep2.ValAcc)
	}
	// Tolerance gate against the f64 oracle: same task, same protocol, f64
	// run. Trajectories diverge sample by sample (rounding compounds through
	// ~200 updates), so the gate is task-level: the f32 run must learn the
	// separable blobs about as well as f64 does.
	tr64 := train.New(build,
		train.WithRefHyper(train.RefHyper{Eta: 0.1, Momentum: 0.9, RefBatch: 16}),
		train.WithSeed(7))
	defer tr64.Close()
	rep64, err := tr64.Fit(context.Background(), trainSet, testSet, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep1.ValAcc-rep64.ValAcc) > 0.15 {
		t.Fatalf("f32 val accuracy %v too far from f64 oracle %v", rep1.ValAcc, rep64.ValAcc)
	}
	if rep1.TrainLoss <= 0 || math.IsNaN(rep1.TrainLoss) || math.IsInf(rep1.TrainLoss, 0) {
		t.Fatalf("f32 train loss %v not finite-positive", rep1.TrainLoss)
	}
}

// TestWithDTypeValidation pins the f64-only gates at the façade: the SGDM
// reference, replicas and the weight-swapping mitigations must error out of
// Fit with actionable messages rather than panic mid-epoch.
func TestWithDTypeValidation(t *testing.T) {
	trainSet, _, build := blobTask()
	cases := []struct {
		name string
		opts []train.Option
		want string
	}{
		{"sgdm", []train.Option{train.WithDType(tensor.F32), train.WithSGDM()}, "f64 oracle"},
		{"replicas", []train.Option{train.WithDType(tensor.F32), train.WithReplicas(2, "none")}, "WithReplicas"},
		{"lwp", []train.Option{train.WithDType(tensor.F32), train.WithMitigations(core.LWPvD)}, "prediction"},
		{"stash", []train.Option{train.WithDType(tensor.F32), train.WithMitigations(core.WeightStash)}, "stashing"},
		{"baddtype", []train.Option{train.WithDType(tensor.DType(9))}, "unknown dtype"},
	}
	for _, tc := range cases {
		tr := train.New(build, tc.opts...)
		_, err := tr.Fit(context.Background(), trainSet, nil, 1)
		tr.Close()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	// SC rides the optimizer coefficients and stays available at f32.
	tr := train.New(build, train.WithDType(tensor.F32), train.WithMitigations(core.SCD),
		train.WithRefHyper(train.RefHyper{Eta: 0.1, Momentum: 0.9, RefBatch: 16}))
	defer tr.Close()
	if _, err := tr.Fit(context.Background(), trainSet, nil, 1); err != nil {
		t.Errorf("SC at f32 should train, got %v", err)
	}
}

// TestServerF32ServesAndSwaps runs the serving facade at f32: logits come
// back f32 and within tolerance of an f64 server over the same weights, and
// a checkpoint produced by an f64 training run hot-swaps into the f32
// server (the narrowing load path).
func TestServerF32ServesAndSwaps(t *testing.T) {
	trainSet, _, build := blobTask()

	// Train a few epochs at f64 and checkpoint — the canonical artifact.
	dir := t.TempDir()
	ckpt := dir + "/ck.bin"
	tr := train.New(build, train.WithRefHyper(train.RefHyper{Eta: 0.1, Momentum: 0.9, RefBatch: 16}))
	if _, err := tr.Fit(context.Background(), trainSet, nil, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	tr.Close()

	s64, err := train.NewServer(build, train.ServerConfig{Engine: "direct", Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	defer s64.Close()
	s32, err := train.NewServer(build, train.ServerConfig{Engine: "direct", Checkpoint: ckpt, DType: tensor.F32})
	if err != nil {
		t.Fatal(err)
	}
	defer s32.Close()

	x := tensor.New(2, 8)
	for i := range x.Data {
		x.Data[i] = float64(i%5) * 0.3
	}
	y64, err := s64.Infer(context.Background(), x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	y32, err := s32.Infer(context.Background(), x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if y32.DType() != tensor.F32 {
		t.Fatalf("f32 server returned %s logits", y32.DType())
	}
	for i, v := range y32.Data32() {
		if d := math.Abs(float64(v) - y64.Data[i]); d > 1e-4*math.Max(1, math.Abs(y64.Data[i])) {
			t.Fatalf("logits[%d]: f32 %v vs f64 %v", i, v, y64.Data[i])
		}
	}
}
