package train

import (
	"fmt"
	"path/filepath"

	"repro/internal/obs/lineage"
)

// Lineage recording (WithLineage): the Trainer keeps an in-memory lineage
// graph — one content-addressed config node for its hyperparameters, a
// checkpoint node per WithCheckpointEvery save (keyed by the snapshot file's
// sha256, so any other run touching the same file mints the same node), and
// one run node per Fit — and merges it into the file at the configured path
// after every checkpoint save and every completed Fit. Merging through
// lineage.Load keeps graphs from concurrent or earlier runs intact.

// initLineage builds the graph and config node on first Fit.
func (t *Trainer) initLineage() {
	if t.o.lineagePath == "" || t.lin != nil {
		return
	}
	attrs := map[string]string{
		"engine":       t.o.engine,
		"seed":         fmt.Sprint(t.o.seed),
		"eta":          fmt.Sprint(t.o.ref.Eta),
		"momentum":     fmt.Sprint(t.o.ref.Momentum),
		"weight_decay": fmt.Sprint(t.o.ref.WeightDecay),
		"ref_batch":    fmt.Sprint(t.o.ref.RefBatch),
		"mitigation":   t.o.mit.Name(),
	}
	if t.o.sgdm {
		attrs["engine"] = "sgdm"
	}
	if t.o.workers > 0 {
		attrs["workers"] = fmt.Sprint(t.o.workers)
	}
	if t.o.kernelWorkers > 0 {
		attrs["kernel_workers"] = fmt.Sprint(t.o.kernelWorkers)
	}
	if t.o.replicas > 0 {
		attrs["replicas"] = fmt.Sprint(t.o.replicas)
		attrs["sync"] = t.o.policy.Name()
	}
	t.lin = lineage.New()
	t.linConfig = t.lin.Add(lineage.KindConfig, "trainer-config", attrs)
}

// recordLineageCheckpoint adds a checkpoint node for the snapshot just
// written to path and flushes the graph. The node's identity is the file's
// content hash, so a serving run loading the same snapshot joins this graph.
func (t *Trainer) recordLineageCheckpoint(path string) error {
	if t.lin == nil {
		return nil
	}
	h, err := lineage.FileHash(path)
	if err != nil {
		return fmt.Errorf("train: lineage: %w", err)
	}
	id := t.lin.Add(lineage.KindCheckpoint, filepath.Base(path),
		map[string]string{"sha256": h}, t.linConfig)
	t.linCkpts = append(t.linCkpts, id)
	return t.flushLineage()
}

// recordLineageRun adds the run node for one completed Fit (parents: config
// plus every checkpoint saved so far) and flushes the graph.
func (t *Trainer) recordLineageRun(rep Report) error {
	if t.lin == nil {
		return nil
	}
	attrs := map[string]string{
		"epochs":  fmt.Sprint(t.epochs),
		"samples": fmt.Sprint(t.completed),
		"stages":  fmt.Sprint(rep.Stages),
	}
	parents := append([]string{t.linConfig}, t.linCkpts...)
	t.lin.Add(lineage.KindRun, "fit", attrs, parents...)
	return t.flushLineage()
}

// flushLineage merges the in-memory graph into the lineage file (load →
// merge → atomic rewrite), preserving nodes minted by other runs.
func (t *Trainer) flushLineage() error {
	g, err := lineage.Load(t.o.lineagePath)
	if err != nil {
		return fmt.Errorf("train: lineage: %w", err)
	}
	g.Merge(t.lin)
	if err := g.Write(t.o.lineagePath); err != nil {
		return fmt.Errorf("train: lineage: %w", err)
	}
	return nil
}
