package train_test

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/sched"
	syncpol "repro/internal/sync"
	"repro/train"
)

// blobTask is the shared tiny workload: a separable 4-class blob problem
// and a 4-stage MLP pipeline.
func blobTask() (*data.Dataset, *data.Dataset, train.Builder) {
	trainSet, testSet := data.GaussianBlobs(8, 4, 64, 32, 3, 0.8, 11)
	build := func(seed int64) *nn.Network { return models.DeepMLP(8, 12, 3, 4, seed) }
	return trainSet, testSet, build
}

// directRun is the pre-redesign training path, hand-wired exactly as
// exp.RunMethod used to do it: core.NewEngine + core.RunEpoch per epoch
// with the seed*7919 RNG stream, Eq. 9 scaling and the He-style MultiStep
// schedule. The façade must reproduce it bit for bit.
func directRun(t *testing.T, build train.Builder, kind string, mit core.Mitigation,
	ref train.RefHyper, trainSet, testSet *data.Dataset, epochs int, seed int64) (curve []float64, weights [][]float64) {
	t.Helper()
	net := build(seed)
	rng := rand.New(rand.NewSource(seed * 7919))
	cfg := core.ScaledConfig(ref.Eta, ref.Momentum, ref.RefBatch, 1)
	cfg.WeightDecay = ref.WeightDecay
	cfg.Mitigation = mit
	total := trainSet.Len() * epochs
	cfg.Schedule = sched.MultiStep{Base: cfg.LR, Milestones: []int{total / 2, total * 3 / 4}, Gamma: 0.1}
	eng, err := core.NewEngine(kind, net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for e := 0; e < epochs; e++ {
		if _, _, err := core.RunEpoch(context.Background(), eng, trainSet, trainSet.Perm(rng), nil, rng, nil); err != nil {
			t.Fatal(err)
		}
		xs, ys := testSet.Batches(32)
		_, a := net.Evaluate(xs, ys)
		curve = append(curve, a)
	}
	return curve, net.SnapshotWeights()
}

func sameWeights(a, b [][]float64) bool {
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestFacadeMatchesDirectEngine is the redesign's bit-identity proof (the
// TestPooledMatchesUnpooled* equivalent through the façade): for the
// deterministic engines and a spread of mitigations, Fit must reproduce the
// hand-wired pre-redesign loop exactly — pooled and unpooled.
func TestFacadeMatchesDirectEngine(t *testing.T) {
	trainSet, testSet, build := blobTask()
	ref := train.RefHyper{Eta: 0.1, Momentum: 0.9, WeightDecay: 1e-4, RefBatch: 16}
	const epochs, seed = 3, 7
	for _, kind := range []string{"seq", "lockstep"} {
		for _, mit := range []core.Mitigation{core.None, core.LWPvDSCD, core.WeightStash} {
			wantCurve, wantW := directRun(t, build, kind, mit, ref, trainSet, testSet, epochs, seed)

			run := func(extra ...train.Option) ([]float64, [][]float64) {
				opts := append([]train.Option{
					train.WithEngine(kind),
					train.WithMitigations(mit),
					train.WithRefHyper(ref),
					train.WithSeed(seed),
				}, extra...)
				tr := train.New(build, opts...)
				defer tr.Close()
				rep, err := tr.Fit(context.Background(), trainSet, testSet, epochs)
				if err != nil {
					t.Fatal(err)
				}
				return rep.Curve, tr.Network().SnapshotWeights()
			}

			gotCurve, gotW := run()
			if !sameWeights(wantW, gotW) {
				t.Fatalf("%s/%s: façade weights deviate from the direct engine path", kind, mit.Name())
			}
			for i := range wantCurve {
				if wantCurve[i] != gotCurve[i] {
					t.Fatalf("%s/%s: façade curve deviates at epoch %d: %v vs %v", kind, mit.Name(), i+1, gotCurve[i], wantCurve[i])
				}
			}
			_, unpooledW := run(train.WithUnpooled())
			if !sameWeights(wantW, unpooledW) {
				t.Fatalf("%s/%s: WithUnpooled deviates from the pooled trajectory", kind, mit.Name())
			}
		}
	}
}

// TestFacadeSGDMMatchesReference proves the SGDM mode reproduces the
// hand-wired mini-batch reference bit for bit.
func TestFacadeSGDMMatchesReference(t *testing.T) {
	trainSet, testSet, build := blobTask()
	ref := train.RefHyper{Eta: 0.1, Momentum: 0.9, WeightDecay: 1e-4, RefBatch: 16}
	const epochs, seed = 3, 9

	net := build(seed)
	rng := rand.New(rand.NewSource(seed * 7919))
	updatesPerEpoch := (trainSet.Len() + ref.RefBatch - 1) / ref.RefBatch
	total := updatesPerEpoch * epochs
	cfg := core.Config{LR: ref.Eta, Momentum: ref.Momentum, WeightDecay: ref.WeightDecay,
		Schedule: sched.MultiStep{Base: ref.Eta, Milestones: []int{total / 2, total * 3 / 4}, Gamma: 0.1}}
	sgd := core.NewSGDTrainer(net, cfg, ref.RefBatch)
	for e := 0; e < epochs; e++ {
		sgd.TrainEpoch(trainSet, trainSet.Perm(rng), nil, rng)
	}

	tr := train.New(build, train.WithSGDM(), train.WithRefHyper(ref), train.WithSeed(seed))
	defer tr.Close()
	if _, err := tr.Fit(context.Background(), trainSet, testSet, epochs); err != nil {
		t.Fatal(err)
	}
	if !sameWeights(net.SnapshotWeights(), tr.Network().SnapshotWeights()) {
		t.Fatal("SGDM façade deviates from the hand-wired reference")
	}
}

// settlesTo waits briefly for the scheduler to retire exiting goroutines.
func settlesTo(baseline int) bool {
	for i := 0; i < 200; i++ {
		if runtime.NumGoroutine() <= baseline {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// TestFitCancelMidEpoch is the cancellation contract for every engine:
// cancelling the context partway through an epoch must stop Fit with the
// context's error, close the engine, and leave zero leaked goroutines —
// verified under -race in CI.
func TestFitCancelMidEpoch(t *testing.T) {
	trainSet, testSet, _ := func() (*data.Dataset, *data.Dataset, train.Builder) {
		tr, te := data.GaussianBlobs(8, 4, 300, 16, 3, 0.8, 11)
		return tr, te, nil
	}()
	build := func(seed int64) *nn.Network { return models.DeepMLP(8, 12, 4, 4, seed) }
	baseline := runtime.NumGoroutine()
	for _, kind := range []string{"seq", "lockstep", "async", "async-lockstep"} {
		ctx, cancel := context.WithCancel(context.Background())
		cancelled := 0
		tr := train.New(build,
			train.WithEngine(kind),
			train.OnSampleDone(func(e train.SampleEvent) {
				if e.Completed == 20 {
					cancelled++
					cancel()
				}
			}))
		rep, err := tr.Fit(ctx, trainSet, testSet, 4)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: Fit returned %v, want context.Canceled", kind, err)
		}
		if cancelled != 1 {
			t.Fatalf("%s: cancel hook fired %d times", kind, cancelled)
		}
		if rep.Epochs != 0 {
			t.Fatalf("%s: cancelled first epoch still reported %d completed epochs", kind, rep.Epochs)
		}
		if rep.Samples < 20 || rep.Samples >= trainSet.Len() {
			t.Fatalf("%s: cancelled run completed %d samples, want partial epoch", kind, rep.Samples)
		}
		// The Trainer must have closed itself: further use is rejected and
		// every stage goroutine is gone.
		if _, err := tr.Fit(context.Background(), trainSet, testSet, 1); err == nil {
			t.Fatalf("%s: Fit after cancellation-close succeeded", kind)
		}
		cancel()
		if !settlesTo(baseline) {
			t.Fatalf("%s: goroutines leaked after cancelled Fit: baseline %d, now %d", kind, baseline, runtime.NumGoroutine())
		}
	}
}

// TestHookOrderDeterministic pins the callback contract: the seq and
// lockstep engines must deliver the exact same OnSampleDone sequence
// (epochs, IDs, losses, counters) — the lockstep schedule is bit-identical
// to the sequential one, and hooks run on the Fit goroutine in completion
// order.
func TestHookOrderDeterministic(t *testing.T) {
	trainSet, testSet, build := blobTask()
	record := func(kind string) []train.SampleEvent {
		var events []train.SampleEvent
		epochEnds := 0
		tr := train.New(build,
			train.WithEngine(kind),
			train.WithSeed(5),
			train.OnSampleDone(func(e train.SampleEvent) { events = append(events, e) }),
			train.OnEpochEnd(func(e train.EpochEvent) { epochEnds++ }))
		defer tr.Close()
		rep, err := tr.Fit(context.Background(), trainSet, testSet, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(events) != rep.Samples || rep.Samples != 2*trainSet.Len() {
			t.Fatalf("%s: %d sample events for %d samples", kind, len(events), rep.Samples)
		}
		if epochEnds != 2 {
			t.Fatalf("%s: %d epoch-end events, want 2", kind, epochEnds)
		}
		return events
	}
	seq := record("seq")
	lock := record("lockstep")
	for i := range seq {
		if seq[i] != lock[i] {
			t.Fatalf("event %d differs between seq and lockstep: %+v vs %+v", i, seq[i], lock[i])
		}
	}
	// Within an epoch, samples complete in submission order, and the
	// lifetime counter is contiguous.
	for i := range seq {
		if seq[i].Completed != i+1 {
			t.Fatalf("event %d has Completed=%d", i, seq[i].Completed)
		}
		wantEpoch := 1 + i/trainSet.Len()
		if seq[i].Epoch != wantEpoch {
			t.Fatalf("event %d in epoch %d, want %d", i, seq[i].Epoch, wantEpoch)
		}
		if seq[i].ID != i {
			t.Fatalf("event %d has ID %d, want %d", i, seq[i].ID, i)
		}
	}
}

// TestCheckpointResume round-trips WithCheckpointEvery + Resume: a fresh
// Trainer resumed from the snapshot must hold bit-identical weights, and
// continuing it must match continuing the original in-memory Trainer
// (including the LR-schedule position).
func TestCheckpointResume(t *testing.T) {
	trainSet, testSet, build := blobTask()
	path := filepath.Join(t.TempDir(), "snap.ckpt")
	var ckpts []train.CheckpointEvent
	// Schedule over 4 planned epochs; the original trains 2, checkpoints,
	// then trains 2 more.
	common := func() []train.Option {
		return []train.Option{
			train.WithEngine("seq"),
			train.WithSeed(3),
			train.WithSchedule(sched.MultiStep{Base: 0.02, Milestones: []int{100, 190}, Gamma: 0.5}),
		}
	}
	orig := train.New(build, append(common(),
		train.WithCheckpointEvery(2, path),
		train.OnCheckpoint(func(e train.CheckpointEvent) { ckpts = append(ckpts, e) }))...)
	defer orig.Close()
	if _, err := orig.Fit(context.Background(), trainSet, testSet, 2); err != nil {
		t.Fatal(err)
	}
	if len(ckpts) != 1 || ckpts[0].Epoch != 2 || ckpts[0].Path != path {
		t.Fatalf("checkpoint events %+v", ckpts)
	}
	snapW := orig.Network().SnapshotWeights()

	// Resume into a fresh Trainer with a different build seed: the restore
	// must overwrite its initialization completely.
	resumed := train.New(build, append(common(), train.WithSeed(99))...)
	defer resumed.Close()
	if err := resumed.Resume(context.Background(), path); err != nil {
		t.Fatal(err)
	}
	rep, err := resumed.Fit(context.Background(), trainSet, testSet, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sameWeights(snapW, resumed.Network().SnapshotWeights()) {
		t.Fatal("resumed weights differ from the snapshot")
	}
	if rep.ValAcc < 0 || rep.ValAcc > 1 {
		t.Fatalf("zero-epoch Fit evaluation implausible: %v", rep.ValAcc)
	}

	// Continue a second resumed Trainer for two epochs and compare against
	// a hand-wired continuation: the snapshot restored into a fresh
	// sequential engine, trained on the same permutation stream. (Resume
	// restores training state but not the data-order stream — the
	// documented contract — so a resumed Trainer replays permutations from
	// its seed; the reference arm consumes the identical stream.) Weights,
	// per-stage optimizer state and the LR-schedule position must all have
	// round-tripped: the continuations match bit for bit.
	resumed2 := train.New(build, common()...)
	defer resumed2.Close()
	if err := resumed2.Resume(context.Background(), path); err != nil {
		t.Fatal(err)
	}
	if _, err := resumed2.Fit(context.Background(), trainSet, testSet, 2); err != nil {
		t.Fatal(err)
	}

	netRef := build(42) // arbitrary init, overwritten by the restore
	cfg := core.ScaledConfig(train.DefaultRef.Eta, train.DefaultRef.Momentum, train.DefaultRef.RefBatch, 1)
	cfg.WeightDecay = train.DefaultRef.WeightDecay
	cfg.Schedule = sched.MultiStep{Base: 0.02, Milestones: []int{100, 190}, Gamma: 0.5}
	engRef := core.NewPBTrainer(netRef, cfg)
	if _, err := checkpoint.LoadPipeline(path, netRef, engRef); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3 * 7919))
	for e := 0; e < 2; e++ {
		if _, _, err := core.RunEpoch(context.Background(), engRef, trainSet, trainSet.Perm(rng), nil, rng, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !sameWeights(netRef.SnapshotWeights(), resumed2.Network().SnapshotWeights()) {
		t.Fatal("resumed continuation deviates from the hand-wired restored engine")
	}
}

// TestOptionAndInputValidation pins the error surface: invalid options and
// inputs are reported by Fit, not silently absorbed.
func TestOptionAndInputValidation(t *testing.T) {
	trainSet, testSet, build := blobTask()
	cases := map[string]*train.Trainer{
		"negative workers": train.New(build, train.WithWorkers(-1)),
		"zero ref batch":   train.New(build, train.WithRefHyper(train.RefHyper{Eta: 0.1, RefBatch: 0})),
		"bad checkpoint":   train.New(build, train.WithCheckpointEvery(0, "x")),
		"empty ckpt path":  train.New(build, train.WithCheckpointEvery(1, "")),
		"unknown engine":   train.New(build, train.WithEngine("warp")),
		"too many workers": train.New(build, train.WithWorkers(1000)),
		"nil builder":      train.New(nil),
	}
	for name, tr := range cases {
		if _, err := tr.Fit(context.Background(), trainSet, testSet, 1); err == nil {
			t.Errorf("%s: Fit succeeded", name)
		}
		tr.Close()
	}
	tr := train.New(build)
	if _, err := tr.Fit(context.Background(), nil, testSet, 1); err == nil {
		t.Error("nil training set: Fit succeeded")
	}
	if _, err := tr.Fit(context.Background(), trainSet, testSet, -1); err == nil {
		t.Error("negative epochs: Fit succeeded")
	}
	tr.Close()
	if _, err := tr.Fit(context.Background(), trainSet, testSet, 1); err == nil {
		t.Error("Fit after Close succeeded")
	}
	if err := tr.Resume(context.Background(), "nowhere.ckpt"); err == nil {
		t.Error("Resume after Close succeeded")
	}
}

// TestFacadeAsyncEnginesTrain drives the remaining engines through the
// façade end to end: the async engines must complete every sample, respect
// the staleness bound, and report sane stats.
func TestFacadeAsyncEnginesTrain(t *testing.T) {
	trainSet, testSet, build := blobTask()
	for _, kind := range []string{"async", "async-lockstep"} {
		tr := train.New(build, train.WithEngine(kind), train.WithSeed(2))
		rep, err := tr.Fit(context.Background(), trainSet, testSet, 2)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Samples != 2*trainSet.Len() {
			t.Fatalf("%s: completed %d of %d samples", kind, rep.Samples, 2*trainSet.Len())
		}
		bound := 2 * (rep.Stages - 1)
		if rep.MaxStaleness > bound {
			t.Fatalf("%s: max staleness %d exceeds bound %d", kind, rep.MaxStaleness, bound)
		}
		if len(rep.Curve) != 2 {
			t.Fatalf("%s: curve %v", kind, rep.Curve)
		}
		tr.Close()
	}
}

// TestFacadeWorkersRegroup checks WithWorkers coarsens the pipeline.
func TestFacadeWorkersRegroup(t *testing.T) {
	trainSet, testSet, build := blobTask()
	tr := train.New(build, train.WithWorkers(2))
	defer tr.Close()
	rep, err := tr.Fit(context.Background(), trainSet, testSet, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stages != 2 {
		t.Fatalf("regrouped pipeline has %d stages, want 2", rep.Stages)
	}
}

// TestFacadeAugmenterNilRNGSafe exercises the satellite fix through the
// façade: an augmenter is usable without wiring any RNG by hand.
func TestFacadeAugmenterNilRNGSafe(t *testing.T) {
	imgs := data.CIFAR10Like(8, 24, 16, 3)
	trainSet, testSet := data.GenerateImages(imgs)
	build := func(seed int64) *nn.Network {
		return models.ResNet(models.MiniResNet(8, 4, 8, 10, seed))
	}
	tr := train.New(build, train.WithAugment(data.PadCropFlip{Channels: 3, Size: 8, Pad: 1}))
	defer tr.Close()
	if _, err := tr.Fit(context.Background(), trainSet, testSet, 1); err != nil {
		t.Fatal(err)
	}
}

// TestSGDMCheckpointRestoresSchedule pins the SGDM snapshot contract: the
// update-step counter (the LR-schedule position) must round-trip through
// WithCheckpointEvery + Resume. A milestone fires during the saved run, so
// a resume that restarted the schedule would train its continuation at a
// 10× larger rate and deviate immediately.
func TestSGDMCheckpointRestoresSchedule(t *testing.T) {
	trainSet, testSet, build := blobTask()
	path := filepath.Join(t.TempDir(), "sgdm.ckpt")
	// Batch 16 over 64 samples = 4 updates/epoch; decay after epoch 1.
	schedule := sched.MultiStep{Base: 0.1, Milestones: []int{4}, Gamma: 0.1}
	ref := train.RefHyper{Eta: 0.1, Momentum: 0.9, WeightDecay: 1e-4, RefBatch: 16}
	opts := func() []train.Option {
		return []train.Option{
			train.WithSGDM(), train.WithSeed(3),
			train.WithRefHyper(ref), train.WithSchedule(schedule),
		}
	}
	orig := train.New(build, append(opts(), train.WithCheckpointEvery(2, path))...)
	defer orig.Close()
	if _, err := orig.Fit(context.Background(), trainSet, testSet, 2); err != nil {
		t.Fatal(err)
	}

	resumed := train.New(build, opts()...)
	defer resumed.Close()
	if err := resumed.Resume(context.Background(), path); err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Fit(context.Background(), trainSet, testSet, 1); err != nil {
		t.Fatal(err)
	}

	// Hand-wired reference: restore the snapshot (weights, velocities AND
	// step) into a fresh SGDTrainer and train one epoch on the permutation
	// stream the resumed Trainer replays from its seed.
	netRef := build(42)
	cfg := core.Config{LR: ref.Eta, Momentum: ref.Momentum, WeightDecay: ref.WeightDecay, Schedule: schedule}
	sgdRef := core.NewSGDTrainer(netRef, cfg, ref.RefBatch)
	st, err := checkpoint.Load(path, netRef, sgdRef.Optimizer())
	if err != nil {
		t.Fatal(err)
	}
	if st.Step != 8 {
		t.Fatalf("snapshot carries step %d, want 8 (2 epochs × 4 updates)", st.Step)
	}
	sgdRef.SetStep(st.Step)
	rng := rand.New(rand.NewSource(3 * 7919))
	sgdRef.TrainEpoch(trainSet, trainSet.Perm(rng), nil, rng)
	if !sameWeights(netRef.SnapshotWeights(), resumed.Network().SnapshotWeights()) {
		t.Fatal("resumed SGDM continuation deviates: schedule position not restored")
	}
}

// TestZeroEpochFirstFitKeepsScheduleSane: a zero-epoch first Fit (the
// evaluate-a-resumed-snapshot idiom) plans zero updates; the default
// schedule must fall back to a constant rate instead of installing
// milestones at {0,0} that would permanently decay the LR 100× for every
// later Fit on the same Trainer.
func TestZeroEpochFirstFitKeepsScheduleSane(t *testing.T) {
	trainSet, testSet, build := blobTask()
	tr := train.New(build, train.WithSeed(3))
	defer tr.Close()
	if _, err := tr.Fit(context.Background(), trainSet, testSet, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Fit(context.Background(), trainSet, testSet, 2); err != nil {
		t.Fatal(err)
	}

	// Reference: a hand-wired engine at the same scaled rate, constant
	// schedule, same stream (the zero-epoch Fit drew no permutations).
	net := build(3)
	cfg := core.ScaledConfig(train.DefaultRef.Eta, train.DefaultRef.Momentum, train.DefaultRef.RefBatch, 1)
	cfg.WeightDecay = train.DefaultRef.WeightDecay
	cfg.Schedule = sched.Constant{Base: cfg.LR}
	eng := core.NewPBTrainer(net, cfg)
	rng := rand.New(rand.NewSource(3 * 7919))
	for e := 0; e < 2; e++ {
		if _, _, err := core.RunEpoch(context.Background(), eng, trainSet, trainSet.Perm(rng), nil, rng, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !sameWeights(net.SnapshotWeights(), tr.Network().SnapshotWeights()) {
		t.Fatal("training after a zero-epoch Fit deviates from the constant-rate reference (degenerate schedule installed?)")
	}
}

// TestResumePipelineSnapshotIntoSGDMRefused: a per-stage pipeline snapshot
// must not restore into an SGDM Trainer — a silent "success" would zero
// the momentum and misread the schedule step.
func TestResumePipelineSnapshotIntoSGDMRefused(t *testing.T) {
	trainSet, testSet, build := blobTask()
	path := filepath.Join(t.TempDir(), "pb.ckpt")
	pb := train.New(build, train.WithSeed(3), train.WithCheckpointEvery(1, path))
	defer pb.Close()
	if _, err := pb.Fit(context.Background(), trainSet, testSet, 1); err != nil {
		t.Fatal(err)
	}
	sgdm := train.New(build, train.WithSGDM(), train.WithSeed(3))
	defer sgdm.Close()
	if err := sgdm.Resume(context.Background(), path); err != nil {
		// Resume before the first Fit defers the restore; the refusal may
		// surface here (already built) or at Fit below.
		return
	}
	if _, err := sgdm.Fit(context.Background(), trainSet, testSet, 1); err == nil {
		t.Fatal("pipeline snapshot restored into an SGDM Trainer without error")
	}
}

// TestTrainerCheckpointMethod: the manual snapshot API must round-trip like
// the periodic one, and refuse before the first build.
func TestTrainerCheckpointMethod(t *testing.T) {
	trainSet, testSet, build := blobTask()
	path := filepath.Join(t.TempDir(), "manual.ckpt")
	tr := train.New(build, train.WithSeed(3))
	defer tr.Close()
	if err := tr.Checkpoint(path); err == nil {
		t.Fatal("Checkpoint before the first Fit succeeded")
	}
	if _, err := tr.Fit(context.Background(), trainSet, testSet, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	re := train.New(build, train.WithSeed(99))
	defer re.Close()
	if err := re.Resume(context.Background(), path); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Fit(context.Background(), trainSet, testSet, 0); err != nil {
		t.Fatal(err)
	}
	if !sameWeights(tr.Network().SnapshotWeights(), re.Network().SnapshotWeights()) {
		t.Fatal("manual Checkpoint did not round-trip the weights")
	}
}

// TestFacadeClusterR1MatchesBare extends the R=1 determinism anchor through
// the façade: WithReplicas(1, policy) must be invisible — identical weights
// and validation curve to the plain engine run — for every policy.
func TestFacadeClusterR1MatchesBare(t *testing.T) {
	trainSet, testSet, build := blobTask()
	for _, policy := range []string{"none", "avg-every-4", "sync-grad"} {
		bare := train.New(build, train.WithEngine("seq"), train.WithSeed(5))
		repBare, err := bare.Fit(context.Background(), trainSet, testSet, 2)
		if err != nil {
			t.Fatal(err)
		}
		clustered := train.New(build, train.WithEngine("seq"), train.WithSeed(5),
			train.WithReplicas(1, policy))
		repCl, err := clustered.Fit(context.Background(), trainSet, testSet, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !sameWeights(bare.Network().SnapshotWeights(), clustered.Network().SnapshotWeights()) {
			t.Fatalf("policy %s: Cluster(R=1) weights deviate from the bare engine", policy)
		}
		if len(repBare.Curve) != len(repCl.Curve) {
			t.Fatalf("policy %s: curve lengths differ", policy)
		}
		for i := range repBare.Curve {
			if repBare.Curve[i] != repCl.Curve[i] {
				t.Fatalf("policy %s: validation curve deviates at epoch %d", policy, i)
			}
		}
		if repCl.Replicas != 1 || repCl.Syncs != 0 {
			t.Fatalf("policy %s: report %d replicas / %d syncs, want 1 / 0", policy, repCl.Replicas, repCl.Syncs)
		}
		bare.Close()
		clustered.Close()
	}
}

// TestFacadeClusterTrains drives a real replicated run through the façade:
// R=2 sync-grad learns the blob task, reports cluster stats, and its
// trajectory is run-to-run deterministic.
func TestFacadeClusterTrains(t *testing.T) {
	trainSet, testSet, build := blobTask()
	run := func() (train.Report, [][]float64) {
		tr := train.New(build, train.WithEngine("seq"), train.WithSeed(7),
			train.WithReplicas(2, "sync-grad"))
		defer tr.Close()
		rep, err := tr.Fit(context.Background(), trainSet, testSet, 10)
		if err != nil {
			t.Fatal(err)
		}
		return rep, tr.Network().SnapshotWeights()
	}
	repA, wA := run()
	repB, wB := run()
	if !sameWeights(wA, wB) {
		t.Fatal("sync-grad façade run is not deterministic")
	}
	if repA.Replicas != 2 || repA.Syncs == 0 {
		t.Fatalf("report %d replicas / %d syncs, want 2 replicas and drain syncs", repA.Replicas, repA.Syncs)
	}
	if repA.ValAcc < 0.5 {
		t.Fatalf("replicated run failed to learn: val acc %.2f", repA.ValAcc)
	}
	if repA.Samples != 10*trainSet.Len() || repB.Samples != repA.Samples {
		t.Fatalf("sample accounting %d, want %d", repA.Samples, 10*trainSet.Len())
	}
}

// TestFacadeClusterCheckpointResume saves a replicated run's snapshot via
// the façade and resumes it into a fresh Trainer: the continued trajectory
// must match the uninterrupted one exactly, and mismatched resume targets
// fail loudly.
func TestFacadeClusterCheckpointResume(t *testing.T) {
	trainSet, testSet, build := blobTask()
	path := filepath.Join(t.TempDir(), "cluster.ckpt")
	schedule := sched.MultiStep{Base: 0.02, Milestones: []int{60, 110}, Gamma: 0.5}
	opts := func() []train.Option {
		return []train.Option{train.WithEngine("seq"), train.WithSeed(9),
			train.WithSchedule(schedule),
			train.WithReplicas(2, "avg-every-8")}
	}
	// Train one epoch and checkpoint through the façade.
	half := train.New(build, opts()...)
	if _, err := half.Fit(context.Background(), trainSet, testSet, 1); err != nil {
		t.Fatal(err)
	}
	if err := half.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	half.Close()
	// Resume into a fresh Trainer and continue one epoch. (The data-order
	// RNG is not part of a snapshot — documented contract — so the fresh
	// Trainer replays the permutation stream from its seed; the hand-wired
	// reference below consumes the identical stream.)
	resumed := train.New(build, opts()...)
	defer resumed.Close()
	if err := resumed.Resume(context.Background(), path); err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Fit(context.Background(), trainSet, testSet, 1); err != nil {
		t.Fatal(err)
	}
	// Hand-wired reference continuation: the snapshot restored into a bare
	// cluster, trained on the same permutation stream with the façade's
	// exact hyperparameters. Per-replica weights, velocities, the sync
	// clock and the shard cursor must all have round-tripped: the
	// continuations match bit for bit.
	nets := make([]*nn.Network, 2)
	nets[0] = build(42) // arbitrary init, overwritten by the restore
	nets[1] = build(43)
	nets[1].RestoreWeights(nets[0].SnapshotWeights())
	cfg := core.ScaledConfig(train.DefaultRef.Eta, train.DefaultRef.Momentum, train.DefaultRef.RefBatch, 1)
	cfg.WeightDecay = train.DefaultRef.WeightDecay
	cfg.Schedule = schedule
	clRef, err := core.NewCluster(nets, cfg, core.ClusterConfig{
		Replicas: 2, Engine: "seq", Policy: syncpol.AvgEvery{K: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer clRef.Close()
	if _, err := checkpoint.LoadCluster(path, clRef); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9 * 7919))
	if _, _, err := core.RunEpoch(context.Background(), clRef, trainSet, trainSet.Perm(rng), nil, rng, nil); err != nil {
		t.Fatal(err)
	}
	if !sameWeights(nets[0].SnapshotWeights(), resumed.Network().SnapshotWeights()) {
		t.Fatal("resumed cluster continuation deviates from the hand-wired restored cluster")
	}
	// Mismatched cluster shape must be rejected.
	wrong := train.New(build, train.WithEngine("seq"), train.WithSeed(9),
		train.WithReplicas(3, "avg-every-8"))
	defer wrong.Close()
	if err := wrong.Resume(context.Background(), path); err != nil {
		t.Fatal(err) // deferred restore: surfaces at Fit
	}
	if _, err := wrong.Fit(context.Background(), trainSet, testSet, 1); err == nil {
		t.Fatal("2-replica snapshot resumed into a 3-replica cluster")
	}
	// A cluster snapshot must not resume into a bare engine.
	bare := train.New(build, train.WithEngine("seq"), train.WithSeed(9))
	defer bare.Close()
	if err := bare.Resume(context.Background(), path); err != nil {
		t.Fatal(err)
	}
	if _, err := bare.Fit(context.Background(), trainSet, testSet, 1); err == nil {
		t.Fatal("cluster snapshot resumed into a single-pipeline Trainer")
	}
}

// TestFacadeClusterRejectsSGDM pins the option conflict.
func TestFacadeClusterRejectsSGDM(t *testing.T) {
	trainSet, testSet, build := blobTask()
	tr := train.New(build, train.WithSGDM(), train.WithReplicas(2, "none"))
	defer tr.Close()
	if _, err := tr.Fit(context.Background(), trainSet, testSet, 1); err == nil {
		t.Fatal("SGDM + WithReplicas accepted")
	}
	bad := train.New(build, train.WithReplicas(2, "avg-every-zero"))
	defer bad.Close()
	if _, err := bad.Fit(context.Background(), trainSet, testSet, 1); err == nil {
		t.Fatal("unparsable sync policy accepted")
	}
}

// TestFacadeStageDelayDoesNotPerturb proves the chaos hook through the
// façade is pure wall-clock: a Fit with WithStageDelay stalls the pipeline
// but finishes with weights bit-identical to an undelayed run, for both the
// single-engine and cluster paths, and WithAdmitBound rides along untouched
// on the stepped engines.
func TestFacadeStageDelayDoesNotPerturb(t *testing.T) {
	trainSet, testSet, build := blobTask()
	hook := func(p core.ChaosPoint) time.Duration {
		if p.Stage == 1 && p.Update%7 == 0 {
			return 50 * time.Microsecond
		}
		return 0
	}
	run := func(replicas int, extra ...train.Option) [][]float64 {
		opts := []train.Option{train.WithEngine("seq"), train.WithSeed(5)}
		if replicas > 1 {
			opts = append(opts, train.WithReplicas(replicas, "sync-grad"))
		}
		tr := train.New(build, append(opts, extra...)...)
		defer tr.Close()
		if _, err := tr.Fit(context.Background(), trainSet, testSet, 2); err != nil {
			t.Fatal(err)
		}
		return tr.Network().SnapshotWeights()
	}
	if !sameWeights(run(1), run(1, train.WithStageDelay(hook))) {
		t.Fatal("WithStageDelay perturbed the single-engine trajectory")
	}
	if !sameWeights(run(2), run(2, train.WithStageDelay(hook), train.WithAdmitBound(4))) {
		t.Fatal("WithStageDelay/WithAdmitBound perturbed the cluster trajectory")
	}
	bad := train.New(build, train.WithAdmitBound(-1))
	defer bad.Close()
	if _, err := bad.Fit(context.Background(), trainSet, testSet, 1); err == nil {
		t.Fatal("negative admit bound accepted")
	}
}
