package train

import (
	"time"

	"repro/internal/core"
)

// SampleEvent is streamed to OnSampleDone callbacks for every completed
// training sample, in completion order. For the deterministic engines
// ("seq", "lockstep", "async-lockstep") the event sequence is identical
// run to run and across those engines; the free-running "async" engine
// completes samples in ID order too, but interleaves them differently
// against submissions.
type SampleEvent struct {
	// Epoch is the 1-based epoch (counted over the Trainer's lifetime).
	Epoch int
	// ID is the engine-assigned sample sequence number.
	ID int
	// Loss and Correct are the sample's training loss and top-1 hit.
	Loss    float64
	Correct bool
	// Completed counts samples completed over the Trainer's lifetime,
	// including this one.
	Completed int
}

// EpochEvent is delivered to OnEpochEnd callbacks after each epoch's drain.
type EpochEvent struct {
	// Epoch is the 1-based epoch (counted over the Trainer's lifetime).
	Epoch int
	// TrainLoss and TrainAcc are the epoch's mean training loss/accuracy.
	TrainLoss, TrainAcc float64
	// ValLoss and ValAcc hold the test-set evaluation; HasVal reports
	// whether one ran (a nil or empty test set skips it).
	ValLoss, ValAcc float64
	HasVal          bool
	// Stats is the engine's post-drain snapshot (zero value in SGDM mode).
	Stats core.Stats
	// Elapsed is the wall time spent training this epoch (excluding
	// evaluation and callbacks).
	Elapsed time.Duration
}

// CheckpointEvent is delivered to OnCheckpoint callbacks after a periodic
// snapshot has been written.
type CheckpointEvent struct {
	// Epoch is the 1-based epoch (Trainer lifetime) the snapshot captured.
	Epoch int
	// Path is the snapshot file.
	Path string
}

// Report summarizes one Fit call.
type Report struct {
	// Stages is the trained pipeline's depth.
	Stages int
	// Epochs and Samples count what this Fit completed.
	Epochs  int
	Samples int
	// Curve is the per-epoch validation accuracy (empty without a test set).
	Curve []float64
	// TrainLoss and TrainAcc are the last epoch's training means.
	TrainLoss, TrainAcc float64
	// ValLoss and ValAcc are the final validation metrics (zero without a
	// test set).
	ValLoss, ValAcc float64
	// Utilization is the engine's utilization measure after the final
	// drain; ObservedDelays and MaxStaleness report the measured per-stage
	// gradient staleness against the analytic bound D_s = 2(S−1−s). All
	// zero in SGDM mode (no pipeline).
	Utilization    float64
	ObservedDelays []int
	MaxStaleness   int
	// TrainDuration is the wall time spent inside the training loop
	// (excluding evaluation and callbacks).
	TrainDuration time.Duration
	// Replicas is the pipeline replica count (0 unless WithReplicas built a
	// cluster engine); Syncs is the cluster's completed weight-sync count.
	Replicas int
	Syncs    int
}
