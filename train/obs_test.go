package train_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/lineage"
	"repro/train"
)

// TestWithObserverStreamsTraining drives a short Fit with a bus attached and
// checks the facade's side of the contract: the engine's events reach an
// aggregator, the drain summary matches the Report, and the Trainer stamps a
// KindEpoch event per epoch.
func TestWithObserverStreamsTraining(t *testing.T) {
	trainSet, testSet, build := blobTask()
	bus := obs.NewBus()
	defer bus.Close()
	agg := obs.NewAggregator(bus)
	defer agg.Close()

	tr := train.New(build, train.WithEngine("lockstep"), train.WithSeed(5), train.WithObserver(bus))
	defer tr.Close()
	rep, err := tr.Fit(context.Background(), trainSet, testSet, 2)
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	var snap obs.Snapshot
	for {
		snap = agg.Snapshot()
		if (snap.HasEngineStats && snap.Epoch == 2) || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !snap.HasEngineStats {
		t.Fatal("no drain summary reached the aggregator")
	}
	if snap.Epoch != 2 {
		t.Fatalf("aggregator epoch = %d, want 2", snap.Epoch)
	}
	if snap.Completed != int64(rep.Samples) {
		t.Fatalf("aggregator completed = %d, Report.Samples = %d", snap.Completed, rep.Samples)
	}
	if snap.EngineUtilization != rep.Utilization {
		t.Fatalf("aggregator utilization = %v, Report.Utilization = %v", snap.EngineUtilization, rep.Utilization)
	}
	if len(snap.StalenessHist) == 0 {
		t.Fatal("no staleness events reached the aggregator")
	}
}

// TestWithObserverBitIdentical: attaching a bus through the facade must not
// change the trained weights (the facade-level restatement of
// core.TestObsDoesNotPerturbTraining).
func TestWithObserverBitIdentical(t *testing.T) {
	trainSet, testSet, build := blobTask()
	run := func(opts ...train.Option) [][]float64 {
		opts = append([]train.Option{train.WithEngine("lockstep"), train.WithSeed(9)}, opts...)
		tr := train.New(build, opts...)
		defer tr.Close()
		if _, err := tr.Fit(context.Background(), trainSet, testSet, 2); err != nil {
			t.Fatal(err)
		}
		return tr.Network().SnapshotWeights()
	}
	plain := run()
	bus := obs.NewBus()
	defer bus.Close()
	sub := bus.Subscribe(16) // shallow on purpose: drops must not matter
	defer sub.Close()
	observed := run(train.WithObserver(bus))
	if !sameWeights(plain, observed) {
		t.Fatal("weights differ with a bus attached through the facade")
	}
}

// TestWithLineageRecordsRun checks the lineage file a Fit leaves behind:
// config → checkpoint → run with content-addressed IDs, verifiable, and
// joinable by a second process hashing the same checkpoint file.
func TestWithLineageRecordsRun(t *testing.T) {
	trainSet, testSet, build := blobTask()
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	lin := filepath.Join(dir, "LINEAGE_run.json")

	tr := train.New(build,
		train.WithEngine("seq"), train.WithSeed(3),
		train.WithCheckpointEvery(1, ckpt), train.WithLineage(lin))
	defer tr.Close()
	if _, err := tr.Fit(context.Background(), trainSet, testSet, 2); err != nil {
		t.Fatal(err)
	}

	g, err := lineage.Load(lin)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
	var cfgID, runID string
	ckpts := 0
	for _, n := range g.Nodes {
		switch n.Kind {
		case lineage.KindConfig:
			cfgID = n.ID
			if n.Attrs["engine"] != "seq" || n.Attrs["seed"] != "3" {
				t.Fatalf("config node attrs %v", n.Attrs)
			}
		case lineage.KindCheckpoint:
			ckpts++
		case lineage.KindRun:
			runID = n.ID
		}
	}
	if cfgID == "" || runID == "" {
		t.Fatalf("graph missing config (%q) or run (%q) node", cfgID, runID)
	}
	// WithCheckpointEvery(1, path) saved after each of 2 epochs into the same
	// file; the epoch-1 and epoch-2 snapshots have different weights, so two
	// distinct checkpoint nodes exist.
	if ckpts != 2 {
		t.Fatalf("graph has %d checkpoint nodes, want 2", ckpts)
	}
	run, _ := g.Lookup(runID)
	if len(run.Parents) != 3 { // config + both checkpoints
		t.Fatalf("run node has %d parents, want 3: %v", len(run.Parents), run.Parents)
	}

	// The final checkpoint node's hash is the file's current content, and a
	// separate run hashing the same file mints the same node ID.
	h, err := lineage.FileHash(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	matched := false
	for _, n := range g.Nodes {
		if n.Kind == lineage.KindCheckpoint && n.Attrs["sha256"] == h {
			other := lineage.New()
			id := other.Add(lineage.KindCheckpoint, filepath.Base(ckpt),
				map[string]string{"sha256": h}, n.Parents...)
			if id != n.ID {
				t.Fatalf("re-derived checkpoint node ID %s != recorded %s", id, n.ID)
			}
			matched = true
		}
	}
	if !matched {
		t.Fatal("no checkpoint node matches the file's current hash")
	}
}

// TestWithLineageMergesAcrossFits: a second Fit on a new Trainer with the
// same lineage path extends the existing graph instead of clobbering it.
func TestWithLineageMergesAcrossFits(t *testing.T) {
	trainSet, testSet, build := blobTask()
	dir := t.TempDir()
	lin := filepath.Join(dir, "LINEAGE_shared.json")

	for i, seed := range []int64{1, 2} {
		tr := train.New(build, train.WithEngine("seq"), train.WithSeed(seed), train.WithLineage(lin))
		if _, err := tr.Fit(context.Background(), trainSet, testSet, 1); err != nil {
			t.Fatal(err)
		}
		tr.Close()
		g, err := lineage.Load(lin)
		if err != nil {
			t.Fatal(err)
		}
		configs := 0
		for _, n := range g.Nodes {
			if n.Kind == lineage.KindConfig {
				configs++
			}
		}
		if configs != i+1 {
			t.Fatalf("after run %d: %d config nodes, want %d", i+1, configs, i+1)
		}
	}
	// The file is deterministic JSON: loading and rewriting is byte-stable.
	before, err := os.ReadFile(lin)
	if err != nil {
		t.Fatal(err)
	}
	g, err := lineage.Load(lin)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Write(lin); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(lin)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("lineage file not byte-stable across load/rewrite")
	}
}
