package train_test

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/train"
)

// ExampleNew trains a small MLP pipeline on a blob task with the paper's
// combined mitigation and reports the run's shape.
func ExampleNew() {
	trainSet, testSet := data.GaussianBlobs(8, 4, 64, 32, 3, 0.8, 11)
	builder := func(seed int64) *nn.Network { return models.DeepMLP(8, 12, 3, 4, seed) }

	tr := train.New(builder,
		train.WithEngine("seq"),
		train.WithSeed(2),
		train.WithMitigations(core.LWPvDSCD),
		train.WithRefHyper(train.RefHyper{Eta: 0.1, Momentum: 0.9, RefBatch: 16}))
	defer tr.Close()

	report, err := tr.Fit(context.Background(), trainSet, testSet, 2)
	if err != nil {
		fmt.Println("fit failed:", err)
		return
	}
	fmt.Println("stages:", report.Stages)
	fmt.Println("epochs:", report.Epochs)
	fmt.Println("samples:", report.Samples)
	fmt.Println("curve points:", len(report.Curve))
	// Output:
	// stages: 4
	// epochs: 2
	// samples: 128
	// curve points: 2
}

// ExampleOnEpochEnd streams per-epoch progress through the hook system
// instead of waiting for the final Report.
func ExampleOnEpochEnd() {
	trainSet, _ := data.GaussianBlobs(8, 4, 32, 0, 3, 0.8, 11)
	builder := func(seed int64) *nn.Network { return models.DeepMLP(8, 12, 2, 4, seed) }

	tr := train.New(builder,
		train.OnEpochEnd(func(e train.EpochEvent) {
			fmt.Printf("epoch %d trained %d samples\n", e.Epoch, e.Stats.Completed)
		}))
	defer tr.Close()

	if _, err := tr.Fit(context.Background(), trainSet, nil, 3); err != nil {
		fmt.Println("fit failed:", err)
	}
	// Output:
	// epoch 1 trained 32 samples
	// epoch 2 trained 64 samples
	// epoch 3 trained 96 samples
}

// ExampleTrainer_Fit shows cancellation: a context cancelled from a sample
// hook stops training mid-epoch and closes the engine cleanly.
func ExampleTrainer_Fit() {
	trainSet, _ := data.GaussianBlobs(8, 4, 128, 0, 3, 0.8, 11)
	builder := func(seed int64) *nn.Network { return models.DeepMLP(8, 12, 2, 4, seed) }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := train.New(builder,
		train.WithEngine("async"),
		train.OnSampleDone(func(e train.SampleEvent) {
			if e.Completed == 10 {
				cancel()
			}
		}))
	_, err := tr.Fit(ctx, trainSet, nil, 8)
	fmt.Println("cancelled:", err == context.Canceled)
	// Output:
	// cancelled: true
}
