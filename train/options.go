package train

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/sched"
	syncpol "repro/internal/sync"
	"repro/internal/tensor"
)

// RefHyper are reference hyperparameters in the style of He et al. (2016a):
// tuned once at reference update size RefBatch and reused by every method.
// The Trainer applies the paper's Eq. 9 scaling to update size one for the
// pipelined engines and uses them unscaled for the SGDM reference — the
// paper's "no hyperparameter tuning" protocol.
type RefHyper struct {
	Eta, Momentum, WeightDecay float64
	RefBatch                   int
}

// DefaultRef is the reference setting used by the repo's image experiments.
var DefaultRef = RefHyper{Eta: 0.05, Momentum: 0.9, WeightDecay: 1e-4, RefBatch: 32}

// Option configures a Trainer at construction. Invalid values are collected
// and reported by the first Fit or Resume call, so New never fails.
type Option func(*options)

type options struct {
	engine        string
	mit           core.Mitigation
	schedule      sched.Schedule
	ref           RefHyper
	workers       int
	kernelWorkers int
	replicas      int
	policy        syncpol.Policy
	ckptEvery     int
	ckptPath      string
	unpooled      bool
	stageDelay    func(core.ChaosPoint) time.Duration
	admitBound    int
	seed          int64
	sgdm          bool
	dtype         tensor.DType
	aug           data.Augmenter
	evalBatch     int
	obsBus        *obs.Bus
	lineagePath   string

	onSample []func(SampleEvent)
	onEpoch  []func(EpochEvent)
	onCkpt   []func(CheckpointEvent)

	errs []error
}

func defaultOptions() options {
	return options{engine: "seq", ref: DefaultRef, seed: 1, evalBatch: 32}
}

// WithEngine selects the pipelined-backpropagation runtime by registry name
// (core.EngineNames lists them; "seq", "lockstep", "async" and
// "async-lockstep" are built in). The empty string keeps the sequential
// reference. Unknown names surface as an error from Fit, when the engine is
// constructed.
func WithEngine(name string) Option {
	return func(o *options) { o.engine = name }
}

// WithMitigations applies a delay-mitigation preset (e.g. core.LWPvDSCD,
// the paper's best combination) to the pipelined engines. Ignored by the
// SGDM reference, which has no delay to mitigate.
func WithMitigations(m core.Mitigation) Option {
	return func(o *options) { o.mit = m }
}

// WithSchedule overrides the learning-rate schedule. By default the Trainer
// installs the paper's He-style MultiStep decay, dropping the rate 10× at
// 50% and 75% of the total planned updates (derived from the first Fit's
// dataset size and epoch count).
func WithSchedule(s sched.Schedule) Option {
	return func(o *options) { o.schedule = s }
}

// WithRefHyper replaces the reference hyperparameters (DefaultRef
// otherwise).
func WithRefHyper(r RefHyper) Option {
	return func(o *options) {
		if r.RefBatch < 1 {
			o.errs = append(o.errs, fmt.Errorf("train: RefHyper.RefBatch %d, want ≥ 1", r.RefBatch))
			return
		}
		if r.Eta <= 0 {
			o.errs = append(o.errs, fmt.Errorf("train: RefHyper.Eta %v, want > 0", r.Eta))
			return
		}
		o.ref = r
	}
}

// WithWorkers regroups the fine-grained pipeline onto n cost-balanced
// workers before training (internal/partition), trading the shorter
// delays of a coarse pipeline against worker specialization. Zero keeps
// the fine-grained decomposition (every layer a stage).
func WithWorkers(n int) Option {
	return func(o *options) {
		if n < 0 {
			o.errs = append(o.errs, fmt.Errorf("train: %d workers, want ≥ 0", n))
			return
		}
		o.workers = n
	}
}

// WithKernelWorkers sets the engine's compute-worker budget n: the total
// number of concurrently busy goroutines the engine may use for stage
// compute, split between pipeline-stage concurrency and intra-kernel
// (blocked GEMM / fused conv) parallelism. The sequential engine gives the
// whole budget to one shared kernel group; the concurrent engines reserve
// one worker per stage and spread the surplus as per-stage kernel workers,
// front-loaded onto the early (FLOP-heavy) stages. 0 (the default) and 1
// disable intra-kernel parallelism. Training results are bit-identical at
// every setting — the parallel kernels partition output tiles without
// changing any accumulation order (DESIGN.md §9). Ignored by the SGDM
// reference. Not to be confused with WithWorkers, which regroups the
// pipeline stages themselves.
func WithKernelWorkers(n int) Option {
	return func(o *options) {
		if n < 0 {
			o.errs = append(o.errs, fmt.Errorf("train: %d kernel workers, want ≥ 0", n))
			return
		}
		o.kernelWorkers = n
	}
}

// WithReplicas trains r data-parallel replicas of the whole pipeline behind
// one cluster engine (core.Cluster): the Builder is invoked once per replica
// with the run seed and every replica is forced weight-identical to the
// first (clone with shared init — independent parameter storage, identical
// values), the sample stream is sharded round-robin across replicas
// (data.Shard striding), and the compute-worker budget of WithKernelWorkers
// is split across replicas before each replica splits it across stages.
//
// policy selects the weight-sync policy: "none" (independent replicas —
// throughput ceiling / ensemble), "avg-every-<k>" (local-SGD-style parameter
// averaging every k samples per replica and at every drain) or "sync-grad"
// (per-update gradient averaging; at r > 1 it needs the "seq" or "lockstep"
// engine and keeps all replicas bit-identical — PB with effective update
// size r). A cluster with r=1 is bit-identical to the bare engine under
// every policy. Ignored by WithSGDM (error at Fit). See DESIGN.md §10.
func WithReplicas(r int, policy string) Option {
	return func(o *options) {
		if r < 1 {
			o.errs = append(o.errs, fmt.Errorf("train: %d replicas, want ≥ 1", r))
			return
		}
		p, err := syncpol.Parse(policy)
		if err != nil {
			o.errs = append(o.errs, fmt.Errorf("train: %w", err))
			return
		}
		o.replicas, o.policy = r, p
	}
}

// WithCheckpointEvery saves a pipeline snapshot to path after every n
// epochs (checkpoint.SavePipeline; atomic tmp+rename). The OnCheckpoint
// hooks fire after each successful save. Resume restores such snapshots.
func WithCheckpointEvery(n int, path string) Option {
	return func(o *options) {
		if n < 1 {
			o.errs = append(o.errs, fmt.Errorf("train: checkpoint every %d epochs, want ≥ 1", n))
			return
		}
		if path == "" {
			o.errs = append(o.errs, fmt.Errorf("train: checkpoint path is empty"))
			return
		}
		o.ckptEvery, o.ckptPath = n, path
	}
}

// WithUnpooled disables the per-stage tensor arenas, allocating fresh
// buffers for every operation exactly like the pre-pooling engines. Slower,
// numerically identical — the reference mode the pooled-equivalence tests
// compare against.
func WithUnpooled() Option {
	return func(o *options) { o.unpooled = true }
}

// WithStageDelay installs a chaos stall hook on the pipelined engines: fn is
// consulted at every stage visit (forward and backward) with the visit's
// ChaosPoint and the stage sleeps for the returned duration before computing.
// Under WithReplicas the cluster stamps each replica's join-order identity
// into ChaosPoint.Replica; single-engine runs see Replica = -1. Stalls are
// pure wall-clock — they shift timing and the free-running engine's race
// outcomes, but never the arithmetic, so the deterministic engines stay
// bit-identical under any hook (chaos.Schedule.Delay is the intended fn; see
// DESIGN.md §14). Ignored by the SGDM reference. A nil fn disables stalls.
func WithStageDelay(fn func(core.ChaosPoint) time.Duration) Option {
	return func(o *options) { o.stageDelay = fn }
}

// WithAdmitBound caps the free-running async engine's in-flight samples at n:
// once n submissions are unfinished, Submit blocks (bounded-staleness
// admission) until one completes, emitting staleness/queue-depth events on
// the observer bus and counting the deferral in Stats().AdmitDeferred. Only
// the "async" engine's free mode enforces the bound — the stepped engines
// already bound staleness structurally and ignore it. Zero (the default)
// means unbounded.
func WithAdmitBound(n int) Option {
	return func(o *options) {
		if n < 0 {
			o.errs = append(o.errs, fmt.Errorf("train: admit bound %d, want ≥ 0", n))
			return
		}
		o.admitBound = n
	}
}

// WithSeed sets the run seed: the Builder is invoked with it, and the
// epoch-permutation/augmentation RNG is derived from it (seed*7919, the
// stream the experiment runners have always used). Default 1.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed }
}

// WithSGDM trains with the paper's mini-batch SGDM reference (update size
// RefBatch, no pipeline, no delay) instead of a pipelined engine. Engine,
// mitigation, worker and unpooled options are ignored in this mode, and
// per-sample hooks do not fire (the reference trainer reports per batch).
func WithSGDM() Option {
	return func(o *options) { o.sgdm = true }
}

// WithDType selects the parameter/compute dtype for the trained network.
// The default, tensor.F64, is the repo's bit-exact oracle path. tensor.F32
// converts the freshly built (f64-initialized) network to float32 before
// training: weights are the deterministic float32 cast of the f64 twin's
// initial weights, kernels run the f32 SIMD path, and the Momentum optimizer
// keeps f64 velocities with one rounding per step (DESIGN.md §15).
//
// f32 training is restricted to the plain pipelined engines: the SGDM
// reference, WithReplicas clusters and every delay mitigation stay f64-only
// (they exchange or predict weights through f64 master buffers), and Fit
// reports an error for those combinations. Checkpoints remain canonical f64
// — saving an f32 run widens, resuming narrows per value.
func WithDType(dt tensor.DType) Option {
	return func(o *options) {
		if dt != tensor.F64 && dt != tensor.F32 {
			o.errs = append(o.errs, fmt.Errorf("train: unknown dtype %v, want tensor.F64 or tensor.F32", dt))
			return
		}
		o.dtype = dt
	}
}

// WithAugment applies a data augmentation policy to every training sample.
// A nil augmenter is the same as not setting one.
func WithAugment(aug data.Augmenter) Option {
	return func(o *options) { o.aug = aug }
}

// WithObserver attaches a metrics bus (obs.NewBus) to the run: the engine
// emits its per-stage queue depths, staleness observations, busy-time
// accounting and drain summaries onto it, and the Trainer adds a KindEpoch
// event after every epoch. The caller owns the bus — subscribe an
// obs.Aggregator or mount obs.Handler for /metrics and /events, and Close it
// after the Trainer. Observation is passive: a run with a bus attached is
// bit-identical to one without (core.TestObsDoesNotPerturbTraining).
func WithObserver(bus *obs.Bus) Option {
	return func(o *options) { o.obsBus = bus }
}

// WithLineage records run lineage to the JSON graph at path
// (obs/lineage.Graph; created on first write, merged into on later ones): a
// content-addressed config node for this Trainer's hyperparameters, a
// checkpoint node (keyed by the snapshot file's sha256) for every
// WithCheckpointEvery save, and a run node per Fit linking config →
// checkpoints. Graphs from separate runs sharing a checkpoint file join on
// the identical checkpoint node, so a serving run's lineage can be traced
// back to the training run that produced its weights.
func WithLineage(path string) Option {
	return func(o *options) {
		if path == "" {
			o.errs = append(o.errs, fmt.Errorf("train: lineage path is empty"))
			return
		}
		o.lineagePath = path
	}
}

// OnSampleDone registers a callback streaming every completed training
// sample in completion order — the live loss/accuracy feed. Callbacks run
// on the Fit goroutine (between engine submissions), so they see a
// quiescent Trainer but should return quickly.
func OnSampleDone(fn func(SampleEvent)) Option {
	return func(o *options) {
		if fn != nil {
			o.onSample = append(o.onSample, fn)
		}
	}
}

// OnEpochEnd registers a callback invoked after each epoch's drain (and
// evaluation, when a test set was supplied).
func OnEpochEnd(fn func(EpochEvent)) Option {
	return func(o *options) {
		if fn != nil {
			o.onEpoch = append(o.onEpoch, fn)
		}
	}
}

// OnCheckpoint registers a callback invoked after each successful periodic
// checkpoint save (see WithCheckpointEvery).
func OnCheckpoint(fn func(CheckpointEvent)) Option {
	return func(o *options) {
		if fn != nil {
			o.onCkpt = append(o.onCkpt, fn)
		}
	}
}
